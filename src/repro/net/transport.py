"""Unidirectional video transport with NACK-based retransmission.

This is the reproduction of the paper's prototype (Section 2.2): a
WebRTC-style transport that packetises each encoded frame, sends the packets
over an emulated uplink, and recovers losses with NACK-triggered
retransmissions over a feedback channel.  The statistic of interest is the
frame transmission latency — the time from a frame being sent to being
completely received — which Figure 3 sweeps against bitrate and loss rate.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .control import (
    REPORT_SIZE_BYTES,
    ControlAction,
    ReceiverReport,
    ReportCollector,
    SenderController,
    fec_group_size_for_overhead,
)
from .emulator import BernoulliLoss, EmulatedPath, PathConfig, fastpath_enabled
from .events import DeadlineScheduler, EventLoop
from .fec import FecConfig, FecEncoder, FecDecoder
from .packet import (
    DEFAULT_MTU_BYTES,
    FrameAssembler,
    FrameTable,
    NackRequest,
    Packet,
    Packetizer,
    PacketType,
    SequenceNackRequest,
    SequenceWindow,
)
from .stats import TransportStats
from repro.obs import NULL_TELEMETRY, Telemetry

#: Fixed bucket edges (seconds) for the per-frame delivery latency
#: histogram — fixed so the serialized stream is a pure function of the
#: observation sequence (see repro.obs.metrics.Histogram).
FRAME_LATENCY_BUCKETS_S = (0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0, 2.0)


@dataclass(slots=True)
class TransportConfig:
    """Configuration of the unidirectional video transport."""

    mtu_bytes: int = DEFAULT_MTU_BYTES
    enable_nack: bool = True
    #: Extra margin added to the estimated frame delivery time before the
    #: receiver first checks for missing packets.
    nack_check_margin_s: float = 0.005
    #: Interval between successive NACK rounds (roughly one RTT in WebRTC).
    nack_retry_interval_s: float = 0.065
    #: Retransmission rounds after which the receiver gives up on a frame.
    max_nack_rounds: int = 20
    #: Optional forward error correction applied per frame.
    fec: Optional[FecConfig] = None
    #: Interval between RTCP-style receiver reports on the feedback path;
    #: ``0`` disables report emission (the open-loop default).
    report_interval_s: float = 0.0


@dataclass(slots=True)
class BurstContext:
    """Sender-side description of one packetised frame burst.

    The batched hot path ships this instead of per-packet :class:`Packet`
    objects: packet ``i`` of the burst has sequence ``first_sequence + i``,
    carries the MTU except for the last packet's remainder, and shares the
    frame's capture/send times.
    """

    frame_id: int
    first_sequence: int
    count: int
    frame_bytes: int
    mtu_bytes: int
    capture_time: float
    send_time: float

    def packet_size(self, index: int) -> int:
        if index < self.count - 1:
            return self.mtu_bytes
        return self.frame_bytes - (self.count - 1) * self.mtu_bytes


@dataclass(slots=True)
class RetransmissionBatch:
    """All retransmissions answering one NACK request, sent as one burst.

    ``entries`` holds ``(burst_context, packet_index)`` pairs; packet ``i``
    of the batch retransmits ``entries[i]``.
    """

    entries: list[tuple[BurstContext, int]]
    send_time: float
    request_time: float

    def packet_size(self, index: int) -> int:
        context, packet_index = self.entries[index]
        return context.packet_size(packet_index)


@dataclass(slots=True)
class ParityBurst:
    """One frame's FEC parity packets, sent as a batched burst.

    Parity packets are few (one per ``group_size`` data packets) and carry
    per-group metadata the decoder needs, so they are materialised up front
    and the delivery callback simply indexes into them.  Parity bursts only
    ever travel through the per-packet ``deliver_single`` mode (FEC
    sessions), so unlike the other burst contexts this one needs no
    ``packet_size`` accessor for the run-granular delivery machinery.
    """

    packets: list[Packet]


@dataclass(slots=True)
class FrameDeliveryEvent:
    """Emitted by the receiver when a frame completes reassembly."""

    frame_id: int
    capture_time: float
    send_time: float
    complete_time: float
    size_bytes: int

    @property
    def transmission_latency(self) -> float:
        return self.complete_time - self.send_time


class VideoSender:
    """Sender half of the transport: packetises frames and serves NACKs."""

    def __init__(
        self,
        loop: EventLoop,
        uplink: EmulatedPath,
        config: TransportConfig,
        stats: TransportStats,
        block_mode: bool = False,
    ) -> None:
        self.loop = loop
        self.uplink = uplink
        self.config = config
        self.stats = stats
        self.packetizer = Packetizer(config.mtu_bytes)
        self._block_mode = block_mode
        self._sent_packets: dict[int, dict[int, Packet]] = {}
        self._packet_by_sequence: dict[int, Packet] = {}
        # Block-mode ledger: frames are (first_sequence, count, bytes,
        # capture_time) records; retransmission packets are materialised on
        # demand from a NACK instead of being held per packet.
        self._ledger: dict[int, BurstContext] = {}
        self._ledger_first_seqs: list[int] = []
        self._ledger_frame_ids: list[int] = []
        self._lookup_memo: Optional[BurstContext] = None
        self._last_retransmit_time: dict[int, float] = {}
        self._fec_encoder = FecEncoder(config.fec) if config.fec else None
        # Parity burst sizes depend only on the frame's byte count (given
        # the fixed MTU and group size), so fixed-bitrate senders reuse one
        # array — which also keeps its identity stable for the path's
        # per-burst memo.
        self._parity_sizes_bytes = -1
        self._parity_sizes: Optional[np.ndarray] = None
        #: Latest controller-set target; ``None`` until an action arrives.
        #: Drivers derive frame sizes from this (see ``drive_closed_loop``).
        self.target_bitrate_bps: Optional[float] = None
        self.bytes_sent = 0
        self.packets_sent = 0
        self.retransmissions_sent = 0

    def apply_action(self, action: ControlAction) -> None:
        """Apply one control decision: retarget bitrate and FEC redundancy.

        The FEC group size realising the requested overhead takes effect from
        the next frame; parity packets are self-describing (``covers`` /
        ``sizes`` metadata), so in-flight groups from the old size decode
        unchanged.
        """
        self.target_bitrate_bps = float(action.target_bitrate_bps)
        encoder = self._fec_encoder
        if encoder is not None and action.fec_overhead_ratio is not None:
            group_size = fec_group_size_for_overhead(action.fec_overhead_ratio)
            if group_size != encoder.config.group_size:
                encoder.config = FecConfig(group_size=group_size)
                # Parity sizing is a function of the group size; drop the memo.
                self._parity_sizes_bytes = -1
                self._parity_sizes = None

    def send_frame(self, frame_id: int, size_bytes: int, capture_time: float) -> list[Packet]:
        """Packetise and transmit one encoded frame.

        On the batched path the burst travels as arrays and the returned
        list is empty — no per-packet objects exist until a NACK asks for a
        retransmission.
        """
        now = self.loop.now
        if self._block_mode:
            frame_bytes = max(1, int(size_bytes))
            sizes = self.packetizer.packet_sizes(frame_bytes)
            count = len(sizes)
            first_sequence = self.packetizer.allocate_sequences(count)
            context = BurstContext(
                frame_id=frame_id,
                first_sequence=first_sequence,
                count=count,
                frame_bytes=frame_bytes,
                mtu_bytes=self.packetizer.mtu_bytes,
                capture_time=capture_time,
                send_time=now,
            )
            self._ledger[frame_id] = context
            self._ledger_first_seqs.append(first_sequence)
            self._ledger_frame_ids.append(frame_id)
            self.stats.register_frame(
                frame_id=frame_id,
                capture_time=capture_time,
                send_time=now,
                size_bytes=size_bytes,
                packet_count=count,
            )
            self.bytes_sent += frame_bytes
            self.packets_sent += count
            self.uplink.send_block(sizes, context)
            if self._fec_encoder is not None:
                # Parity travels as its own burst right behind the data —
                # the same transmit order (data packets, then parity) the
                # scalar path produces, so loss/jitter RNG streams and
                # serialisation instants line up exactly.
                parity = self._fec_encoder.protect_burst(
                    frame_id, count, sizes, capture_time
                )
                for fec_packet in parity:
                    fec_packet.send_time = now
                if frame_bytes == self._parity_sizes_bytes:
                    parity_sizes = self._parity_sizes
                else:
                    parity_sizes = np.fromiter(
                        (p.size_bytes for p in parity), dtype=np.int64, count=len(parity)
                    )
                    self._parity_sizes_bytes = frame_bytes
                    self._parity_sizes = parity_sizes
                self.bytes_sent += int(parity_sizes.sum())
                self.packets_sent += len(parity)
                self.uplink.send_block(parity_sizes, ParityBurst(parity))
            return []
        packets = self.packetizer.packetize(frame_id, size_bytes, capture_time)
        self._sent_packets[frame_id] = {p.index_in_frame: p for p in packets}
        for packet in packets:
            self._packet_by_sequence[packet.sequence] = packet
        self.stats.register_frame(
            frame_id=frame_id,
            capture_time=capture_time,
            send_time=now,
            size_bytes=size_bytes,
            packet_count=len(packets),
        )
        for packet in packets:
            self._transmit(packet)
        if self._fec_encoder is not None:
            for fec_packet in self._fec_encoder.protect(packets, self.packetizer):
                self._transmit(fec_packet)
        return packets

    def _transmit(self, packet: Packet) -> None:
        packet.send_time = self.loop.now
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        self.uplink.send(packet)

    def _retransmit(self, original: Packet, request_time: float) -> bool:
        """Retransmit a packet unless it was resent very recently (dedup)."""
        last = self._last_retransmit_time.get(original.sequence)
        if last is not None and self.loop.now - last < self.config.nack_retry_interval_s / 2:
            return False
        self._last_retransmit_time[original.sequence] = self.loop.now
        copy = self.packetizer.retransmission_copy(original, request_time)
        self._transmit(copy)
        self.retransmissions_sent += 1
        return True

    def _claim_retransmission(self, context: BurstContext, index: int) -> bool:
        """Dedup gate: skip a sequence retransmitted very recently."""
        sequence = context.first_sequence + index
        last = self._last_retransmit_time.get(sequence)
        if last is not None and self.loop.now - last < self.config.nack_retry_interval_s / 2:
            return False
        self._last_retransmit_time[sequence] = self.loop.now
        return True

    def _send_batch(self, entries: list[tuple[BurstContext, int]], request_time: float) -> None:
        """Transmit one NACK request's retransmissions as a single burst."""
        now = self.loop.now
        size_list = [context.packet_size(index) for context, index in entries]
        sizes = np.array(size_list, dtype=np.int64)
        self.bytes_sent += sum(size_list)
        self.packets_sent += len(entries)
        self.retransmissions_sent += len(entries)
        self.uplink.send_block(
            sizes, RetransmissionBatch(entries=entries, send_time=now, request_time=request_time)
        )

    def _lookup_sequence(self, sequence: int) -> Optional[tuple[BurstContext, int]]:
        """Resolve a global sequence number to its (burst, index) in the ledger."""
        memo = self._lookup_memo
        if memo is not None and 0 <= sequence - memo.first_sequence < memo.count:
            return memo, sequence - memo.first_sequence
        position = bisect_right(self._ledger_first_seqs, sequence) - 1
        if position < 0:
            return None
        context = self._ledger.get(self._ledger_frame_ids[position])
        if context is None:  # forgotten frame
            return None
        index = sequence - context.first_sequence
        if index >= context.count:
            return None
        self._lookup_memo = context
        return context, index

    def on_nack(self, request: NackRequest) -> None:
        """Handle a per-frame NACK by retransmitting the missing packet indices."""
        if self._block_mode:
            context = self._ledger.get(request.frame_id)
            if context is None:
                return
            entries = [
                (context, index)
                for index in request.missing_indices
                if 0 <= index < context.count and self._claim_retransmission(context, index)
            ]
            if entries:
                self.stats.record_retransmission(request.frame_id, len(entries))
                self._send_batch(entries, request.request_time)
            return
        frame_packets = self._sent_packets.get(request.frame_id)
        if not frame_packets:
            return
        retransmitted = 0
        for index in request.missing_indices:
            original = frame_packets.get(index)
            if original is None:
                continue
            if self._retransmit(original, request.request_time):
                retransmitted += 1
        if retransmitted:
            self.stats.record_retransmission(request.frame_id, retransmitted)

    def on_sequence_nack(self, request: SequenceNackRequest) -> None:
        """Handle a sequence-number NACK (covers fully lost frames)."""
        retransmitted_by_frame: dict[int, int] = {}
        if self._block_mode:
            entries = []
            for sequence in request.missing_sequences:
                resolved = self._lookup_sequence(sequence)
                if resolved is None:
                    continue
                context, index = resolved
                if self._claim_retransmission(context, index):
                    entries.append(resolved)
                    retransmitted_by_frame[context.frame_id] = (
                        retransmitted_by_frame.get(context.frame_id, 0) + 1
                    )
            if entries:
                self._send_batch(entries, request.request_time)
        else:
            for sequence in request.missing_sequences:
                original = self._packet_by_sequence.get(sequence)
                if original is None:
                    continue
                if self._retransmit(original, request.request_time):
                    retransmitted_by_frame[original.frame_id] = (
                        retransmitted_by_frame.get(original.frame_id, 0) + 1
                    )
        for frame_id, count in retransmitted_by_frame.items():
            self.stats.record_retransmission(frame_id, count)

    def forget_frame(self, frame_id: int) -> None:
        """Drop retransmission state for a frame (e.g. once it is obsolete)."""
        forgotten = self._ledger.pop(frame_id, None)
        if forgotten is not None and self._lookup_memo is forgotten:
            self._lookup_memo = None
        packets = self._sent_packets.pop(frame_id, None)
        if packets:
            for packet in packets.values():
                self._packet_by_sequence.pop(packet.sequence, None)


class VideoReceiver:
    """Receiver half of the transport: reassembles frames and issues NACKs."""

    def __init__(
        self,
        loop: EventLoop,
        config: TransportConfig,
        stats: TransportStats,
        send_nack: Callable[[NackRequest], None],
        on_frame: Optional[Callable[[FrameDeliveryEvent], None]] = None,
        send_sequence_nack: Optional[Callable[[SequenceNackRequest], None]] = None,
        block_mode: bool = False,
        send_report: Optional[Callable[[ReceiverReport], None]] = None,
    ) -> None:
        self.loop = loop
        self.config = config
        self.stats = stats
        self.assembler = FrameAssembler()
        # Batched-delivery bookkeeping: per-frame arrival-time arrays, a
        # ring-buffer sequence window, and every NACK/completion deadline
        # coalesced behind a single outstanding loop event.  All three are
        # keyed on exact per-packet arrival timestamps, so recording a whole
        # delivered run at its first arrival leaves every observable
        # statistic identical to per-packet delivery.
        self._block_mode = block_mode
        self._table = FrameTable()
        self._window = SequenceWindow()
        self._deadlines = DeadlineScheduler(loop)
        self._seq_chain_pending = False
        self._send_nack = send_nack
        self._send_sequence_nack = send_sequence_nack
        self._on_frame = on_frame
        self._nack_rounds: dict[int, int] = {}
        self._check_scheduled: set[int] = set()
        self._frame_meta: dict[int, tuple[float, float, int]] = {}
        # Decoder state for an incomplete frame outlives the NACK machinery's
        # give-up point by a few retry intervals (late retransmissions still
        # in flight can combine with pending parity).
        self._fec_decoder = (
            FecDecoder(
                config.fec,
                stale_timeout_s=(config.max_nack_rounds + 4) * config.nack_retry_interval_s,
            )
            if config.fec
            else None
        )
        self._fec_flush_scheduled: set[int] = set()
        self.delivered_frames: list[FrameDeliveryEvent] = []
        # Sequence-gap tracking (covers frames whose packets were all lost).
        # ``_missing_sequences`` holds sequences observed as gaps and not yet received.
        self._missing_sequences: set[int] = set()
        self._highest_sequence: int = -1
        self._missing_sequence_rounds: dict[int, int] = {}
        self._sequence_check_pending = False
        # RTCP-style receiver reports: raw wire-packet samples recorded by
        # whichever delivery mode is active, aggregated on the absolute
        # report-interval grid by the shared DeadlineScheduler so report
        # timing and contents are bit-identical across modes.
        self._send_report = send_report
        self._reports = (
            ReportCollector(config.report_interval_s)
            if send_report is not None and config.report_interval_s > 0
            else None
        )

    # --- receiver reports --------------------------------------------------

    def _report_record(
        self, arrival_time: float, send_time: float, size_bytes: int, sequence: int
    ) -> None:
        """Record one wire packet, (re)arming the report chain if dormant.

        ``sequence`` is the video-space sequence, or -1 for packets outside
        that space (FEC parity), which count towards rate and delay only.
        """
        armed = self._reports.record(arrival_time, send_time, size_bytes, sequence)
        if armed is not None:
            tick, deadline = armed
            # tie_time: the scalar path arms this chain while processing the
            # recorded packet, i.e. at that packet's arrival.
            self._deadlines.schedule_at(
                deadline,
                lambda: self._report_fire(tick),
                tie_time=arrival_time,
                priority=2,
            )

    def _report_fire(self, tick: int) -> None:
        report, armed = self._reports.collect(self.loop.now, tick)
        if armed is not None:
            next_tick, deadline = armed
            self._deadlines.schedule_at(
                deadline, lambda: self._report_fire(next_tick), priority=2
            )
        if report is not None:
            self._send_report(report)

    def on_packet(self, packet: Packet, arrival_time: float) -> None:
        if self._reports is not None:
            self._report_record(
                arrival_time,
                packet.send_time,
                packet.size_bytes,
                -1 if packet.packet_type == PacketType.FEC else packet.sequence,
            )
        if packet.packet_type == PacketType.FEC:
            recovered = None
            if self._fec_decoder is not None:
                recovered = self._fec_decoder.on_fec_packet(packet, self.assembler)
                self._maybe_schedule_fec_flush(packet.frame_id)
            if recovered:
                for data_packet in recovered:
                    self._accept(data_packet, arrival_time)
            return
        recovered: list[Packet] = []
        if self._fec_decoder is not None:
            # Recording the packet may let previously-pending parity repair
            # the remaining hole in its group.
            recovered = self._fec_decoder.on_data_packet(packet, self.assembler)
        self._accept(packet, arrival_time)
        for data_packet in recovered:
            self._accept(data_packet, arrival_time)
        if self._fec_decoder is not None:
            self._maybe_schedule_fec_flush(packet.frame_id)

    def _maybe_schedule_fec_flush(self, frame_id: int) -> None:
        """Arrange a deferred retry for parity held without loss evidence.

        Pending parity is normally retried when a later packet arrives, but
        for a frame at the tail of a burst (or of the session) no later
        packet may ever come.  After roughly one NACK interval any reordered
        in-flight packet has landed, so remaining holes can be presumed lost
        and the parity flushed.
        """
        if not self._fec_decoder.has_pending(frame_id):
            return
        if frame_id in self._fec_flush_scheduled:
            return
        self._fec_flush_scheduled.add(frame_id)
        self.loop.schedule(
            self.config.nack_retry_interval_s, lambda: self._flush_fec(frame_id)
        )

    def _flush_fec(self, frame_id: int) -> None:
        self._fec_flush_scheduled.discard(frame_id)
        if self._fec_decoder is None or self.assembler.is_complete(frame_id):
            return
        for packet in self._fec_decoder.flush_frame(frame_id, self.assembler):
            self._accept(packet, self.loop.now)

    def _accept(self, packet: Packet, arrival_time: float) -> None:
        self._track_sequence(packet)
        frame_id = packet.frame_id
        # A duplicate delivery (a retransmission racing an FEC recovery, or a
        # reordered original arriving after its parity stood in for it) must
        # not count its bytes against the frame twice.
        duplicate = self.assembler.has_packet(frame_id, packet.index_in_frame)
        if frame_id not in self._frame_meta:
            self._frame_meta[frame_id] = (packet.capture_time, packet.send_time, 0)
        capture_time, first_send, size = self._frame_meta[frame_id]
        first_send = min(first_send, packet.send_time) if size else packet.send_time
        if not duplicate:
            size += packet.size_bytes
        self._frame_meta[frame_id] = (capture_time, first_send, size)

        completed = self.assembler.on_packet(packet, arrival_time)
        if completed:
            self._complete_frame(frame_id, arrival_time)
        elif (
            self.config.enable_nack
            and packet.is_last_in_frame
            and frame_id not in self._check_scheduled
        ):
            # Only once the frame's final packet has arrived do we know the
            # remaining holes are losses rather than packets still in flight.
            self._check_scheduled.add(frame_id)
            self.loop.schedule(self.config.nack_check_margin_s, lambda: self._check_frame(frame_id))

    def _complete_frame(self, frame_id: int, complete_time: float) -> None:
        self.stats.record_completion(frame_id, complete_time)
        if self._fec_decoder is not None:
            self._fec_decoder.on_frame_complete(frame_id)
        capture_time, send_time, size = self._frame_meta.get(frame_id, (0.0, 0.0, 0))
        event = FrameDeliveryEvent(
            frame_id=frame_id,
            capture_time=capture_time,
            send_time=send_time,
            complete_time=complete_time,
            size_bytes=size,
        )
        self.delivered_frames.append(event)
        if self._on_frame is not None:
            self._on_frame(event)

    def _check_frame(self, frame_id: int) -> None:
        """Periodic per-frame check: request whatever is still missing."""
        if self.assembler.is_complete(frame_id):
            return
        missing = self.assembler.missing_indices(frame_id)
        if not missing:
            return
        rounds = self._nack_rounds.get(frame_id, 0)
        if rounds >= self.config.max_nack_rounds:
            return
        self._nack_rounds[frame_id] = rounds + 1
        request = NackRequest(
            frame_id=frame_id,
            missing_indices=missing,
            request_time=self.loop.now,
        )
        self._send_nack(request)
        self.loop.schedule(self.config.nack_retry_interval_s, lambda: self._check_frame(frame_id))

    # --- batched delivery (fast path) ------------------------------------

    def on_block(
        self,
        context: BurstContext,
        offsets: np.ndarray,
        arrivals: np.ndarray,
        run_bytes: int,
        ordered: bool = True,
    ) -> None:
        """Record one delivered run of a frame burst.

        Runs are handed over at their *first* arrival with exact per-packet
        arrival times; every decision below keys on those timestamps (never
        on ``loop.now``), and timers are armed at absolute instants, so the
        NACK/completion timeline matches per-packet delivery bit-for-bit.
        """
        config = self.config
        if self._reports is not None:
            # Per-sample recording keyed on exact arrival timestamps; the
            # collector's tick guard tolerates unordered runs recording out
            # of arrival order, so no sort is needed here.
            first_sequence = context.first_sequence
            send_time = context.send_time
            for offset, arrival in zip(offsets.tolist(), arrivals.tolist()):
                self._report_record(
                    arrival, send_time, context.packet_size(offset), first_sequence + offset
                )
        # The window records the span this run actually covers (losses
        # between runs surface as the sequence jump when the next run, or a
        # later burst, records) — runs of one burst must not re-initialise
        # each other's slots.
        base = int(offsets[0])
        last_offset = int(offsets[-1])
        first_discovery = self._window.record(
            context.first_sequence + base,
            last_offset - base + 1,
            offsets - base,
            arrivals,
            ordered,
        )
        if first_discovery != np.inf:
            self._arm_sequence_chain(first_discovery)

        slot = self._table.ensure(
            context.frame_id, context.count, context.capture_time, context.send_time
        )
        fresh = slot.received == 0
        if not fresh:
            view = (
                slot.arrivals[base : last_offset + 1] if ordered else slot.arrivals[offsets]
            )
            fresh = bool(np.isinf(view).all())
        if fresh:
            if ordered:
                slot.arrivals[base : last_offset + 1] = arrivals
            else:
                slot.arrivals[offsets] = arrivals
            slot.received += len(offsets)
            slot.bytes += run_bytes
        else:
            # Rare out-of-order recording: an extreme reorder let NACKed
            # retransmissions record before this run's event fired.  Merge
            # per packet with the duplicate guard so received/bytes stay
            # exact and arrivals keep their minima.
            for offset, arrival in zip(offsets.tolist(), arrivals.tolist()):
                self._table.record_single(
                    slot, offset, arrival, context.packet_size(offset)
                )

        complete_now = slot.received >= slot.expected
        if complete_now and slot.complete_time is None and slot.finalize_at is None:
            completion = float(arrivals[-1]) if ordered else slot.completion_instant()
            self._finish_frame(context.frame_id, slot, completion, final=ordered)
        if config.enable_nack and not slot.check_armed and last_offset == context.count - 1:
            # The frame's final packet tells the receiver the remaining
            # holes are losses; arm the check only if the frame was still
            # incomplete at that packet's own arrival instant.  Under
            # reordering a burst that eventually completes can still arm the
            # check (a straggler was in flight when the final *index*
            # landed) — the scalar path does exactly that.
            if ordered:
                t_last = float(arrivals[-1])
                incomplete_then = not complete_now  # in-order: processed last
            else:
                t_last = float(arrivals[np.flatnonzero(offsets == context.count - 1)[0]])
                incomplete_then = int(np.count_nonzero(slot.arrivals <= t_last)) < slot.expected
            if incomplete_then:
                slot.check_armed = True
                # tie_time: the scalar path arms this check while processing
                # the frame's final packet, i.e. at that packet's arrival.
                self._deadlines.schedule_at(
                    t_last + config.nack_check_margin_s,
                    lambda frame_id=context.frame_id: self._frame_check_fire(frame_id),
                    tie_time=t_last,
                    priority=1,
                )

    def _arm_sequence_chain(self, discovery: float) -> None:
        """Start the coalesced sequence-NACK chain at ``discovery`` + margin
        (the instant the scalar path arms its own chain)."""
        if (
            discovery != np.inf
            and self.config.enable_nack
            and self._send_sequence_nack is not None
            and not self._seq_chain_pending
        ):
            self._seq_chain_pending = True
            # tie_time: the scalar path arms its chain while processing the
            # discovering packet, i.e. at the discovery instant.
            self._deadlines.schedule_at(
                discovery + self.config.nack_check_margin_s,
                self._sequence_chain_fire,
                tie_time=discovery,
            )

    def on_single(self, packet: Packet, arrival_time: float) -> None:
        """Record one individually delivered packet."""
        self._record_single_delivery(
            frame_id=packet.frame_id,
            expected=packet.packets_in_frame,
            index=packet.index_in_frame,
            sequence=packet.sequence,
            size_bytes=packet.size_bytes,
            capture_time=packet.capture_time,
            send_time=packet.send_time,
            arrival_time=arrival_time,
        )

    def on_retransmission_block(
        self,
        batch: "RetransmissionBatch",
        offsets: np.ndarray,
        arrivals: np.ndarray,
        run_bytes: int,
        ordered: bool,
    ) -> None:
        """Record one delivered run of a retransmission batch.

        A NACK request's retransmissions travel as one burst through
        :meth:`EmulatedPath.send_block`; each surviving packet is recorded
        with its exact arrival time, so this is observationally identical to
        per-packet delivery.
        """
        entries = batch.entries
        for offset, arrival in zip(offsets.tolist(), arrivals.tolist()):
            context, index = entries[offset]
            self._record_single_delivery(
                frame_id=context.frame_id,
                expected=context.count,
                index=index,
                sequence=context.first_sequence + index,
                size_bytes=context.packet_size(index),
                capture_time=context.capture_time,
                send_time=batch.send_time,
                arrival_time=arrival,
            )

    def _record_single_delivery(
        self,
        frame_id: int,
        expected: int,
        index: int,
        sequence: int,
        size_bytes: int,
        capture_time: float,
        send_time: float,
        arrival_time: float,
    ) -> None:
        if self._reports is not None:
            self._report_record(arrival_time, send_time, size_bytes, sequence)
        if sequence >= 0:
            discovery = self._window.record_single(sequence, arrival_time)
            if discovery != np.inf:
                self._arm_sequence_chain(discovery)
        slot = self._table.get(frame_id)
        if slot is None:
            slot = self._table.ensure(frame_id, expected, capture_time, send_time)
        elif send_time < slot.first_send_time:
            slot.first_send_time = send_time
        filled_hole = self._table.record_single(slot, index, arrival_time, size_bytes)
        completed_now = False
        if filled_hole and slot.received >= slot.expected and slot.complete_time is None:
            completion = slot.completion_instant()
            # "Completed by this packet" is judged at its arrival instant
            # (that is what suppresses the scalar path's check arming)...
            completed_now = completion <= arrival_time
            # ...but the *recorded* instant is only final once it is in the
            # simulated past: a batch processed later can still carry an
            # earlier arrival for some index (a retransmission racing a
            # reordered in-flight original) and lower it.  Future-dated
            # completions defer to a loop event that re-derives the instant.
            if completion <= self.loop.now:
                self._record_completion(frame_id, slot, completion)
            elif slot.finalize_at is None or completion < slot.finalize_at:
                self._finish_frame(frame_id, slot, completion, final=False)
        if (
            not completed_now
            and self.config.enable_nack
            and index == expected - 1
            and not slot.check_armed
        ):
            slot.check_armed = True
            self._deadlines.schedule_at(
                arrival_time + self.config.nack_check_margin_s,
                lambda: self._frame_check_fire(frame_id),
                tie_time=arrival_time,
                priority=1,
            )

    def _finish_frame(self, frame_id: int, slot, completion: float, final: bool) -> None:
        """Record a completion, deferring when the instant could still move.

        ``final`` asserts the completion instant can no longer be lowered (a
        jitter-reordered original racing a retransmission is the only thing
        that can lower it).  Recording early keeps every statistic exact —
        the *value* is the exact instant — but the ``on_frame`` callback
        must still observe it at the right simulated time, so a registered
        callback always defers to a loop event at the completion instant.
        """
        if final and (self._on_frame is None or completion <= self.loop.now):
            self._record_completion(frame_id, slot, completion)
            return
        slot.finalize_at = completion
        self.loop.schedule_at(
            completion, lambda: self._finalize_frame(frame_id)
        )

    def _finalize_frame(self, frame_id: int) -> None:
        slot = self._table.get(frame_id)
        if slot is None or slot.complete_time is not None:
            return
        # Re-derive the completion instant: a retransmission racing a
        # reordered in-flight original can only have moved it earlier.
        self._record_completion(frame_id, slot, slot.completion_instant())

    def _record_completion(self, frame_id: int, slot, complete_time: float) -> None:
        slot.complete_time = complete_time
        self.stats.record_completion(frame_id, complete_time)
        event = FrameDeliveryEvent(
            frame_id=frame_id,
            capture_time=slot.capture_time,
            send_time=slot.first_send_time,
            complete_time=complete_time,
            size_bytes=slot.bytes,
        )
        self.delivered_frames.append(event)
        if self._on_frame is not None:
            self._on_frame(event)

    def _frame_check_fire(self, frame_id: int) -> None:
        """Deadline-driven twin of :meth:`_check_frame` over the frame table."""
        now = self.loop.now
        slot = self._table.get(frame_id)
        if slot is None or slot.complete_at(now):
            return
        missing = slot.missing_at(now)
        if not missing:
            return
        if slot.nack_rounds >= self.config.max_nack_rounds:
            return
        slot.nack_rounds += 1
        self._send_nack(
            NackRequest(frame_id=frame_id, missing_indices=missing, request_time=now)
        )
        self._deadlines.schedule_at(
            now + self.config.nack_retry_interval_s,
            lambda: self._frame_check_fire(frame_id),
            priority=1,
        )

    def _sequence_chain_fire(self) -> None:
        """Deadline-driven twin of :meth:`_check_sequences` over the window."""
        self._seq_chain_pending = False
        now = self.loop.now
        max_rounds = self.config.max_nack_rounds
        gaps = self._window.gaps_at(now, max_rounds)
        if not len(gaps):
            # Batched recording can know of gaps whose discovery instant is
            # still ahead; re-arm for that instant — exactly when the scalar
            # path would restart its chain.
            upcoming = self._window.next_discovery_after(now, max_rounds)
            if upcoming != np.inf:
                self._seq_chain_pending = True
                # tie_time: the scalar path would restart its chain while
                # processing the packet arriving at the discovery instant.
                self._deadlines.schedule_at(
                    upcoming + self.config.nack_check_margin_s,
                    self._sequence_chain_fire,
                    tie_time=upcoming,
                )
            return
        self._window.bump_rounds(gaps)
        request = SequenceNackRequest(
            missing_sequences=tuple(gaps),
            request_time=now,
        )
        if self._send_sequence_nack is not None:
            self._send_sequence_nack(request)
        self._seq_chain_pending = True
        self._deadlines.schedule_at(
            now + self.config.nack_retry_interval_s, self._sequence_chain_fire
        )

    # --- sequence-gap detection ------------------------------------------

    def _track_sequence(self, packet: Packet) -> None:
        """Record a received sequence number and arm gap detection."""
        if packet.sequence < 0:
            return
        self._missing_sequences.discard(packet.sequence)
        self._missing_sequence_rounds.pop(packet.sequence, None)
        if packet.sequence > self._highest_sequence:
            # Every sequence skipped over is a new gap candidate.
            for sequence in range(self._highest_sequence + 1, packet.sequence):
                self._missing_sequences.add(sequence)
                self._missing_sequence_rounds.setdefault(sequence, 0)
            self._highest_sequence = packet.sequence
        if not self.config.enable_nack or self._send_sequence_nack is None:
            return
        # Arm the check chain only when a NACK-able gap exists right now.
        # This pins arming instants to gap-discovery instants, which is what
        # lets the batched path reproduce this chain's timing exactly.  It
        # is a (deliberate) semantic refinement over arming on the raw
        # missing set: previously, round-exhausted leftovers armed no-op
        # checks, and a fresh gap discovered within one check margin of
        # such an arming would ride it and be NACKed up to one margin
        # earlier than its own discovery would schedule.
        if (
            self._missing_sequences
            and not self._sequence_check_pending
            and self._sequence_gaps()
        ):
            self._sequence_check_pending = True
            self.loop.schedule(self.config.nack_check_margin_s, self._check_sequences)

    def _sequence_gaps(self) -> list[int]:
        """Sequence numbers below the highest seen that have not arrived."""
        return sorted(
            sequence
            for sequence in self._missing_sequences
            if self._missing_sequence_rounds.get(sequence, 0) < self.config.max_nack_rounds
        )

    def _check_sequences(self) -> None:
        self._sequence_check_pending = False
        gaps = self._sequence_gaps()
        if not gaps:
            return
        for sequence in gaps:
            self._missing_sequence_rounds[sequence] = (
                self._missing_sequence_rounds.get(sequence, 0) + 1
            )
        request = SequenceNackRequest(
            missing_sequences=tuple(gaps),
            request_time=self.loop.now,
        )
        if self._send_sequence_nack is not None:
            self._send_sequence_nack(request)
        self._sequence_check_pending = True
        self.loop.schedule(self.config.nack_retry_interval_s, self._check_sequences)


class VideoTransportSession:
    """A complete sender/receiver pair over an emulated uplink and feedback path.

    The feedback path carries NACKs — and, when ``report_interval_s`` is set,
    RTCP-style receiver reports — from the receiver back to the sender with
    its own propagation delay (the downlink in the paper's asymmetric setup).
    An optional :class:`SenderController` closes the loop: each report that
    survives the feedback path becomes a :class:`ControlAction` applied to
    the sender (target bitrate and FEC redundancy), logged in
    ``control_log`` as ``(apply_time, action)`` pairs.
    """

    def __init__(
        self,
        uplink_config: Optional[PathConfig] = None,
        feedback_config: Optional[PathConfig] = None,
        transport_config: Optional[TransportConfig] = None,
        on_frame: Optional[Callable[[FrameDeliveryEvent], None]] = None,
        controller: Optional[SenderController] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.loop = EventLoop()
        self.transport_config = transport_config or TransportConfig()
        self.stats = TransportStats()

        # Telemetry is strictly opt-in: the default NULL_TELEMETRY hands out
        # no-op instruments, so the increments below cost one method call and
        # the session's behaviour is unchanged (gated in tests and perfbench).
        # Counters are incremented only at points that are bit-identical
        # across the scalar and batched delivery paths; the bulk counters are
        # published from final stats by finalize_telemetry().
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_nacks = self.telemetry.metrics.counter("net.session.nacks_sent")
        self._m_reports = self.telemetry.metrics.counter("net.session.reports_received")
        self._m_actions = self.telemetry.metrics.counter("net.session.controller_actions")
        self._telemetry_finalized = False
        # The per-session span runs on sim-time; its attributes carry only
        # mode-independent facts so the serialized stream stays identical
        # under REPRO_NET_FASTPATH=0/1.
        self._session_span = self.telemetry.trace.start(
            "net.session",
            self.loop.now,
            clock="sim",
            fec=(self.transport_config.fec is not None),
            controller=(controller is not None),
        )

        uplink_config = uplink_config or PathConfig()
        feedback_config = feedback_config or PathConfig(
            bandwidth_bps=uplink_config.bandwidth_bps,
            propagation_delay_s=uplink_config.propagation_delay_s,
            loss_model=BernoulliLoss(0.0),
            seed=uplink_config.seed + 1,
        )

        # Batched block delivery carries frame bursts as arrays end-to-end.
        # FEC sessions batch the *sender and path* (drop decisions,
        # admission, serialisation and jitter in numpy; lost packets never
        # materialise) but keep per-packet delivery events: parity decode
        # decisions are order-coupled to individual arrivals in ways
        # run-granular recording does not reproduce, so each surviving
        # packet is materialised at its own arrival instant and handed to
        # the scalar receiver (see docs/PERFORMANCE.md for the contract).
        fast = fastpath_enabled()
        fec_enabled = self.transport_config.fec is not None
        self.block_mode = fast and not fec_enabled
        self.packet_block_mode = fast and fec_enabled

        self.uplink = EmulatedPath(
            self.loop,
            uplink_config,
            self._deliver_uplink,
            deliver_block=self._deliver_uplink_block if self.block_mode else None,
            deliver_single=self._deliver_uplink_single if self.packet_block_mode else None,
        )
        self.feedback = EmulatedPath(
            self.loop,
            feedback_config,
            self._deliver_feedback,
            lazy_dequeue=(self.block_mode or self.packet_block_mode) or None,
        )

        self.receiver = VideoReceiver(
            self.loop,
            self.transport_config,
            self.stats,
            send_nack=self._queue_nack,
            on_frame=on_frame,
            send_sequence_nack=self._queue_sequence_nack,
            block_mode=self.block_mode,
            send_report=self._queue_report,
        )
        self.sender = VideoSender(
            self.loop,
            self.uplink,
            self.transport_config,
            self.stats,
            block_mode=self.block_mode or self.packet_block_mode,
        )
        self._nack_sequence = 0
        self.controller = controller
        #: ``(apply_time, action)`` pairs in application order.
        self.control_log: list[tuple[float, ControlAction]] = []
        self.reports_received = 0
        if controller is not None:
            self._apply_action(controller.initial_action())

    # --- wiring ---------------------------------------------------------

    def _deliver_uplink(self, packet: Packet, arrival_time: float) -> None:
        if self.block_mode:
            self.receiver.on_single(packet, arrival_time)
        else:
            self.receiver.on_packet(packet, arrival_time)

    def _deliver_uplink_block(
        self,
        context,
        offsets: np.ndarray,
        arrivals: np.ndarray,
        run_bytes: int,
        ordered: bool,
    ) -> None:
        if type(context) is BurstContext:
            self.receiver.on_block(context, offsets, arrivals, run_bytes, ordered)
        else:
            self.receiver.on_retransmission_block(context, offsets, arrivals, run_bytes, ordered)

    def _deliver_uplink_single(self, context, offset: int, arrival_time: float) -> None:
        """Materialise packet ``offset`` of a batched burst at its arrival.

        FEC sessions batch the send side but deliver per packet; the
        materialised packets carry exactly the fields the scalar sender's
        packets would (sequence, timings, retransmission metadata), so the
        scalar receiver pipeline — assembler, FEC decoder, NACK machinery —
        observes an identical stream.
        """
        if type(context) is BurstContext:
            packet = Packet(
                sequence=context.first_sequence + offset,
                frame_id=context.frame_id,
                index_in_frame=offset,
                packets_in_frame=context.count,
                size_bytes=context.packet_size(offset),
                capture_time=context.capture_time,
                send_time=context.send_time,
            )
        elif type(context) is ParityBurst:
            packet = context.packets[offset]
        else:  # RetransmissionBatch
            burst, index = context.entries[offset]
            packet = Packet(
                sequence=burst.first_sequence + index,
                frame_id=burst.frame_id,
                index_in_frame=index,
                packets_in_frame=burst.count,
                size_bytes=burst.packet_size(index),
                capture_time=burst.capture_time,
                send_time=context.send_time,
                packet_type=PacketType.RETRANSMISSION,
                metadata={
                    "original_sequence": burst.first_sequence + index,
                    "request_time": context.request_time,
                },
            )
        self.receiver.on_packet(packet, arrival_time)

    def _queue_nack(self, request: NackRequest) -> None:
        packet = Packet(
            sequence=self._nack_sequence,
            frame_id=request.frame_id,
            index_in_frame=0,
            packets_in_frame=1,
            size_bytes=request.size_bytes,
            capture_time=request.request_time,
            send_time=self.loop.now,
            packet_type=PacketType.NACK,
            metadata={"request": request},
        )
        self._nack_sequence += 1
        self._m_nacks.inc()
        self.feedback.send(packet)

    def _queue_sequence_nack(self, request: SequenceNackRequest) -> None:
        packet = Packet(
            sequence=self._nack_sequence,
            frame_id=-1,
            index_in_frame=0,
            packets_in_frame=1,
            size_bytes=request.size_bytes,
            capture_time=request.request_time,
            send_time=self.loop.now,
            packet_type=PacketType.NACK,
            metadata={"request": request},
        )
        self._nack_sequence += 1
        self._m_nacks.inc()
        self.feedback.send(packet)

    def _queue_report(self, report: ReceiverReport) -> None:
        """Put one receiver report on the feedback path (RTCP RR analogue).

        Reports share the NACK packets' feedback sequence space and are
        subject to the same loss/jitter, so they can arrive late, reordered,
        or not at all — the controller sees exactly what the wire delivers.
        """
        packet = Packet(
            sequence=self._nack_sequence,
            frame_id=-1,
            index_in_frame=0,
            packets_in_frame=1,
            size_bytes=REPORT_SIZE_BYTES,
            capture_time=report.report_time,
            send_time=self.loop.now,
            packet_type=PacketType.ACK,
            metadata={"report": report},
        )
        self._nack_sequence += 1
        self.feedback.send(packet)

    def _apply_action(self, action: ControlAction) -> None:
        self.control_log.append((self.loop.now, action))
        self._m_actions.inc()
        self.sender.apply_action(action)

    def _deliver_feedback(self, packet: Packet, arrival_time: float) -> None:
        request = packet.metadata.get("request")
        if isinstance(request, NackRequest):
            self.sender.on_nack(request)
            return
        if isinstance(request, SequenceNackRequest):
            self.sender.on_sequence_nack(request)
            return
        report = packet.metadata.get("report")
        if report is not None:
            self.reports_received += 1
            self._m_reports.inc()
            if self.controller is not None:
                self._apply_action(self.controller.on_report(report, self.loop.now))

    # --- driving --------------------------------------------------------

    def send_frame(self, frame_id: int, size_bytes: int, capture_time: Optional[float] = None) -> None:
        capture = self.loop.now if capture_time is None else capture_time
        self.sender.send_frame(frame_id, size_bytes, capture)

    def run(self, until: Optional[float] = None) -> None:
        if until is None:
            self.loop.run_until_idle()
        else:
            self.loop.run(until=until)

    def fec_summary(self) -> dict[str, int]:
        """Decoder-side FEC counters (all zero when FEC is disabled)."""
        decoder = self.receiver._fec_decoder
        if decoder is None:
            return {
                "recovered_packets": 0,
                "spurious_recoveries": 0,
                "pending_parity_frames": 0,
            }
        return {
            "recovered_packets": decoder.recovered_packets,
            "spurious_recoveries": decoder.spurious_recoveries,
            "pending_parity_frames": decoder.pending_parity_frames,
        }

    def finalize_telemetry(self) -> None:
        """Close the per-session span and publish the end-of-run counters.

        Idempotent, and a no-op when telemetry is disabled.  Every value
        read here — sender counters, path counters, per-frame latencies,
        FEC recovery counts — is bit-identical across the scalar and
        batched delivery paths (held by the stats-equivalence gates), so
        the serialized telemetry stream is bit-identical too; perfbench
        gates that directly (``telemetry_stream_identical``).
        """
        telemetry = self.telemetry
        if not telemetry.enabled or self._telemetry_finalized:
            return
        self._telemetry_finalized = True
        metrics = telemetry.metrics
        frames = self.stats.frames
        metrics.counter("net.session.frames_sent").inc(len(frames))
        metrics.counter("net.session.packets_sent").inc(self.sender.packets_sent)
        metrics.counter("net.session.bytes_sent").inc(self.sender.bytes_sent)
        metrics.counter("net.session.retransmissions_sent").inc(
            self.sender.retransmissions_sent
        )
        path = self.uplink.stats
        metrics.counter("net.session.packets_dropped").inc(
            path.packets_lost_random + path.packets_dropped_queue
        )
        fec = self.fec_summary()
        metrics.counter("net.session.fec.recovered").inc(fec["recovered_packets"])
        metrics.counter("net.session.fec.spurious").inc(fec["spurious_recoveries"])
        delivered = metrics.counter("net.session.frames_delivered")
        latency = metrics.histogram(
            "net.session.frame_latency_s", FRAME_LATENCY_BUCKETS_S
        )
        # stats.frames is frame_id-sorted, so the observation order (and the
        # histogram's float total) is deterministic and mode-independent.
        for record in frames:
            if record.transmission_latency is not None:
                delivered.inc()
                latency.observe(record.transmission_latency)
        telemetry.trace.finish(self._session_span, self.loop.now)


@dataclass(slots=True)
class FixedBitrateWorkload:
    """A constant-bitrate video source: ``bitrate_bps`` split across ``fps`` frames.

    ``iframe_interval`` and ``iframe_scale`` optionally make every Nth frame
    larger, mimicking the I/P structure of a real encoder, while keeping the
    long-run average at the target bitrate.
    """

    bitrate_bps: float
    fps: float = 30.0
    iframe_interval: int = 0
    iframe_scale: float = 3.0
    size_jitter: float = 0.0
    seed: int = 0

    def frame_sizes(self, count: int) -> np.ndarray:
        if count <= 0:
            return np.zeros(0, dtype=int)
        base = self.bitrate_bps / self.fps / 8.0
        sizes = np.full(count, base, dtype=float)
        if self.iframe_interval and self.iframe_interval > 0:
            is_iframe = np.arange(count) % self.iframe_interval == 0
            n_i = int(is_iframe.sum())
            n_p = count - n_i
            if n_p > 0:
                # Preserve the average: scale I-frames up, P-frames down.
                p_scale = (count - n_i * self.iframe_scale) / n_p
                p_scale = max(p_scale, 0.1)
                sizes[is_iframe] = base * self.iframe_scale
                sizes[~is_iframe] = base * p_scale
        if self.size_jitter > 0:
            rng = np.random.default_rng(self.seed)
            sizes *= rng.normal(1.0, self.size_jitter, size=count).clip(0.3, 3.0)
        return np.maximum(sizes, 1).astype(int)


def drive_fixed_bitrate(
    session: VideoTransportSession,
    workload: FixedBitrateWorkload,
    duration_s: float,
) -> None:
    """Feed ``duration_s`` of the workload's frames into ``session`` and run it.

    One bulk conversion to native ints instead of a numpy-scalar unwrap per
    scheduled frame; chained scheduling (each send schedules the next) keeps
    one source event in the heap instead of one per frame — identical
    timing, since the next capture instant never precedes the current one.
    After the last frame the loop runs 5 more simulated seconds so in-flight
    retransmissions settle.
    """
    frame_count = max(1, int(round(duration_s * workload.fps)))
    sizes = workload.frame_sizes(frame_count).tolist()
    interval = 1.0 / workload.fps

    def _send(frame_id: int) -> None:
        session.send_frame(frame_id, sizes[frame_id], capture_time=frame_id * interval)
        if frame_id + 1 < frame_count:
            session.loop.schedule_at(
                (frame_id + 1) * interval, lambda: _send(frame_id + 1)
            )

    session.loop.schedule_at(0.0, lambda: _send(0))
    session.run(until=duration_s + 5.0)


def drive_closed_loop(
    session: VideoTransportSession,
    workload: FixedBitrateWorkload,
    duration_s: float,
) -> None:
    """Adaptive twin of :func:`drive_fixed_bitrate`.

    Each frame's size is derived from the sender's *current* target bitrate
    at its capture instant, so controller actions applied between frames
    re-shape the very next frame.  ``workload.bitrate_bps`` only seeds the
    rate until the first action lands (a session constructed with a
    controller applies its initial action up front, so with a controller the
    workload rate is never used).  Frame send instants are the same fixed
    fps grid as the open-loop driver, and actions apply at report-arrival
    instants that are event-exact across delivery modes, so the closed-loop
    frame stream is bit-identical between the scalar and batched paths.
    """
    frame_count = max(1, int(round(duration_s * workload.fps)))
    interval = 1.0 / workload.fps
    jitter = None
    if workload.size_jitter > 0:
        rng = np.random.default_rng(workload.seed)
        jitter = rng.normal(1.0, workload.size_jitter, size=frame_count).clip(0.3, 3.0)

    def _send(frame_id: int) -> None:
        target = session.sender.target_bitrate_bps
        if target is None:
            target = workload.bitrate_bps
        size = target / workload.fps / 8.0
        if jitter is not None:
            size *= float(jitter[frame_id])
        session.send_frame(frame_id, max(int(size), 1), capture_time=frame_id * interval)
        if frame_id + 1 < frame_count:
            session.loop.schedule_at(
                (frame_id + 1) * interval, lambda: _send(frame_id + 1)
            )

    session.loop.schedule_at(0.0, lambda: _send(0))
    session.run(until=duration_s + 5.0)


def run_fixed_bitrate_session(
    bitrate_bps: float,
    duration_s: float,
    fps: float = 30.0,
    uplink_config: Optional[PathConfig] = None,
    feedback_config: Optional[PathConfig] = None,
    transport_config: Optional[TransportConfig] = None,
    workload: Optional[FixedBitrateWorkload] = None,
    telemetry: Optional[Telemetry] = None,
) -> TransportStats:
    """Run a constant-bitrate transmission and return per-frame statistics.

    This is the primitive behind the Figure 3 reproduction: sweep
    ``bitrate_bps`` and the path loss rate, and look at the frame
    transmission latency distribution.  Passing an enabled ``telemetry``
    additionally publishes the session's counter/span stream into it.
    """
    session = VideoTransportSession(
        uplink_config, feedback_config, transport_config, telemetry=telemetry
    )
    workload = workload or FixedBitrateWorkload(bitrate_bps=bitrate_bps, fps=fps)
    drive_fixed_bitrate(session, workload, duration_s)
    session.finalize_telemetry()
    return session.stats
