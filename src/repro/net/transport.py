"""Unidirectional video transport with NACK-based retransmission.

This is the reproduction of the paper's prototype (Section 2.2): a
WebRTC-style transport that packetises each encoded frame, sends the packets
over an emulated uplink, and recovers losses with NACK-triggered
retransmissions over a feedback channel.  The statistic of interest is the
frame transmission latency — the time from a frame being sent to being
completely received — which Figure 3 sweeps against bitrate and loss rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .emulator import BernoulliLoss, EmulatedPath, PathConfig
from .events import EventLoop
from .fec import FecConfig, FecEncoder, FecDecoder
from .packet import (
    DEFAULT_MTU_BYTES,
    FrameAssembler,
    NackRequest,
    Packet,
    Packetizer,
    PacketType,
    SequenceNackRequest,
)
from .stats import TransportStats


@dataclass
class TransportConfig:
    """Configuration of the unidirectional video transport."""

    mtu_bytes: int = DEFAULT_MTU_BYTES
    enable_nack: bool = True
    #: Extra margin added to the estimated frame delivery time before the
    #: receiver first checks for missing packets.
    nack_check_margin_s: float = 0.005
    #: Interval between successive NACK rounds (roughly one RTT in WebRTC).
    nack_retry_interval_s: float = 0.065
    #: Retransmission rounds after which the receiver gives up on a frame.
    max_nack_rounds: int = 20
    #: Optional forward error correction applied per frame.
    fec: Optional[FecConfig] = None


@dataclass(slots=True)
class FrameDeliveryEvent:
    """Emitted by the receiver when a frame completes reassembly."""

    frame_id: int
    capture_time: float
    send_time: float
    complete_time: float
    size_bytes: int

    @property
    def transmission_latency(self) -> float:
        return self.complete_time - self.send_time


class VideoSender:
    """Sender half of the transport: packetises frames and serves NACKs."""

    def __init__(
        self,
        loop: EventLoop,
        uplink: EmulatedPath,
        config: TransportConfig,
        stats: TransportStats,
    ) -> None:
        self.loop = loop
        self.uplink = uplink
        self.config = config
        self.stats = stats
        self.packetizer = Packetizer(config.mtu_bytes)
        self._sent_packets: dict[int, dict[int, Packet]] = {}
        self._packet_by_sequence: dict[int, Packet] = {}
        self._last_retransmit_time: dict[int, float] = {}
        self._fec_encoder = FecEncoder(config.fec) if config.fec else None
        self.bytes_sent = 0
        self.packets_sent = 0
        self.retransmissions_sent = 0

    def send_frame(self, frame_id: int, size_bytes: int, capture_time: float) -> list[Packet]:
        """Packetise and transmit one encoded frame."""
        now = self.loop.now
        packets = self.packetizer.packetize(frame_id, size_bytes, capture_time)
        self._sent_packets[frame_id] = {p.index_in_frame: p for p in packets}
        for packet in packets:
            self._packet_by_sequence[packet.sequence] = packet
        self.stats.register_frame(
            frame_id=frame_id,
            capture_time=capture_time,
            send_time=now,
            size_bytes=size_bytes,
            packet_count=len(packets),
        )
        for packet in packets:
            self._transmit(packet)
        if self._fec_encoder is not None:
            for fec_packet in self._fec_encoder.protect(packets, self.packetizer):
                self._transmit(fec_packet)
        return packets

    def _transmit(self, packet: Packet) -> None:
        packet.send_time = self.loop.now
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        self.uplink.send(packet)

    def _retransmit(self, original: Packet, request_time: float) -> bool:
        """Retransmit a packet unless it was resent very recently (dedup)."""
        last = self._last_retransmit_time.get(original.sequence)
        if last is not None and self.loop.now - last < self.config.nack_retry_interval_s / 2:
            return False
        self._last_retransmit_time[original.sequence] = self.loop.now
        copy = self.packetizer.retransmission_copy(original, request_time)
        self._transmit(copy)
        self.retransmissions_sent += 1
        return True

    def on_nack(self, request: NackRequest) -> None:
        """Handle a per-frame NACK by retransmitting the missing packet indices."""
        frame_packets = self._sent_packets.get(request.frame_id)
        if not frame_packets:
            return
        retransmitted = 0
        for index in request.missing_indices:
            original = frame_packets.get(index)
            if original is None:
                continue
            if self._retransmit(original, request.request_time):
                retransmitted += 1
        if retransmitted:
            self.stats.record_retransmission(request.frame_id, retransmitted)

    def on_sequence_nack(self, request: SequenceNackRequest) -> None:
        """Handle a sequence-number NACK (covers fully lost frames)."""
        retransmitted_by_frame: dict[int, int] = {}
        for sequence in request.missing_sequences:
            original = self._packet_by_sequence.get(sequence)
            if original is None:
                continue
            if self._retransmit(original, request.request_time):
                retransmitted_by_frame[original.frame_id] = (
                    retransmitted_by_frame.get(original.frame_id, 0) + 1
                )
        for frame_id, count in retransmitted_by_frame.items():
            self.stats.record_retransmission(frame_id, count)

    def forget_frame(self, frame_id: int) -> None:
        """Drop retransmission state for a frame (e.g. once it is obsolete)."""
        packets = self._sent_packets.pop(frame_id, None)
        if packets:
            for packet in packets.values():
                self._packet_by_sequence.pop(packet.sequence, None)


class VideoReceiver:
    """Receiver half of the transport: reassembles frames and issues NACKs."""

    def __init__(
        self,
        loop: EventLoop,
        config: TransportConfig,
        stats: TransportStats,
        send_nack: Callable[[NackRequest], None],
        on_frame: Optional[Callable[[FrameDeliveryEvent], None]] = None,
        send_sequence_nack: Optional[Callable[[SequenceNackRequest], None]] = None,
    ) -> None:
        self.loop = loop
        self.config = config
        self.stats = stats
        self.assembler = FrameAssembler()
        self._send_nack = send_nack
        self._send_sequence_nack = send_sequence_nack
        self._on_frame = on_frame
        self._nack_rounds: dict[int, int] = {}
        self._check_scheduled: set[int] = set()
        self._frame_meta: dict[int, tuple[float, float, int]] = {}
        # Decoder state for an incomplete frame outlives the NACK machinery's
        # give-up point by a few retry intervals (late retransmissions still
        # in flight can combine with pending parity).
        self._fec_decoder = (
            FecDecoder(
                config.fec,
                stale_timeout_s=(config.max_nack_rounds + 4) * config.nack_retry_interval_s,
            )
            if config.fec
            else None
        )
        self._fec_flush_scheduled: set[int] = set()
        self.delivered_frames: list[FrameDeliveryEvent] = []
        # Sequence-gap tracking (covers frames whose packets were all lost).
        # ``_missing_sequences`` holds sequences observed as gaps and not yet received.
        self._missing_sequences: set[int] = set()
        self._highest_sequence: int = -1
        self._missing_sequence_rounds: dict[int, int] = {}
        self._sequence_check_pending = False

    def on_packet(self, packet: Packet, arrival_time: float) -> None:
        if packet.packet_type == PacketType.FEC:
            recovered = None
            if self._fec_decoder is not None:
                recovered = self._fec_decoder.on_fec_packet(packet, self.assembler)
                self._maybe_schedule_fec_flush(packet.frame_id)
            if recovered:
                for data_packet in recovered:
                    self._accept(data_packet, arrival_time)
            return
        recovered: list[Packet] = []
        if self._fec_decoder is not None:
            # Recording the packet may let previously-pending parity repair
            # the remaining hole in its group.
            recovered = self._fec_decoder.on_data_packet(packet, self.assembler)
        self._accept(packet, arrival_time)
        for data_packet in recovered:
            self._accept(data_packet, arrival_time)
        if self._fec_decoder is not None:
            self._maybe_schedule_fec_flush(packet.frame_id)

    def _maybe_schedule_fec_flush(self, frame_id: int) -> None:
        """Arrange a deferred retry for parity held without loss evidence.

        Pending parity is normally retried when a later packet arrives, but
        for a frame at the tail of a burst (or of the session) no later
        packet may ever come.  After roughly one NACK interval any reordered
        in-flight packet has landed, so remaining holes can be presumed lost
        and the parity flushed.
        """
        if not self._fec_decoder.has_pending(frame_id):
            return
        if frame_id in self._fec_flush_scheduled:
            return
        self._fec_flush_scheduled.add(frame_id)
        self.loop.schedule(
            self.config.nack_retry_interval_s, lambda: self._flush_fec(frame_id)
        )

    def _flush_fec(self, frame_id: int) -> None:
        self._fec_flush_scheduled.discard(frame_id)
        if self._fec_decoder is None or self.assembler.is_complete(frame_id):
            return
        for packet in self._fec_decoder.flush_frame(frame_id, self.assembler):
            self._accept(packet, self.loop.now)

    def _accept(self, packet: Packet, arrival_time: float) -> None:
        self._track_sequence(packet)
        frame_id = packet.frame_id
        # A duplicate delivery (a retransmission racing an FEC recovery, or a
        # reordered original arriving after its parity stood in for it) must
        # not count its bytes against the frame twice.
        duplicate = self.assembler.has_packet(frame_id, packet.index_in_frame)
        if frame_id not in self._frame_meta:
            self._frame_meta[frame_id] = (packet.capture_time, packet.send_time, 0)
        capture_time, first_send, size = self._frame_meta[frame_id]
        first_send = min(first_send, packet.send_time) if size else packet.send_time
        if not duplicate:
            size += packet.size_bytes
        self._frame_meta[frame_id] = (capture_time, first_send, size)

        completed = self.assembler.on_packet(packet, arrival_time)
        if completed:
            self._complete_frame(frame_id, arrival_time)
        elif (
            self.config.enable_nack
            and packet.is_last_in_frame
            and frame_id not in self._check_scheduled
        ):
            # Only once the frame's final packet has arrived do we know the
            # remaining holes are losses rather than packets still in flight.
            self._check_scheduled.add(frame_id)
            self.loop.schedule(self.config.nack_check_margin_s, lambda: self._check_frame(frame_id))

    def _complete_frame(self, frame_id: int, complete_time: float) -> None:
        self.stats.record_completion(frame_id, complete_time)
        if self._fec_decoder is not None:
            self._fec_decoder.on_frame_complete(frame_id)
        capture_time, send_time, size = self._frame_meta.get(frame_id, (0.0, 0.0, 0))
        event = FrameDeliveryEvent(
            frame_id=frame_id,
            capture_time=capture_time,
            send_time=send_time,
            complete_time=complete_time,
            size_bytes=size,
        )
        self.delivered_frames.append(event)
        if self._on_frame is not None:
            self._on_frame(event)

    def _check_frame(self, frame_id: int) -> None:
        """Periodic per-frame check: request whatever is still missing."""
        if self.assembler.is_complete(frame_id):
            return
        missing = self.assembler.missing_indices(frame_id)
        if not missing:
            return
        rounds = self._nack_rounds.get(frame_id, 0)
        if rounds >= self.config.max_nack_rounds:
            return
        self._nack_rounds[frame_id] = rounds + 1
        request = NackRequest(
            frame_id=frame_id,
            missing_indices=missing,
            request_time=self.loop.now,
        )
        self._send_nack(request)
        self.loop.schedule(self.config.nack_retry_interval_s, lambda: self._check_frame(frame_id))

    # --- sequence-gap detection ------------------------------------------

    def _track_sequence(self, packet: Packet) -> None:
        """Record a received sequence number and arm gap detection."""
        if packet.sequence < 0:
            return
        self._missing_sequences.discard(packet.sequence)
        self._missing_sequence_rounds.pop(packet.sequence, None)
        if packet.sequence > self._highest_sequence:
            # Every sequence skipped over is a new gap candidate.
            for sequence in range(self._highest_sequence + 1, packet.sequence):
                self._missing_sequences.add(sequence)
                self._missing_sequence_rounds.setdefault(sequence, 0)
            self._highest_sequence = packet.sequence
        if not self.config.enable_nack or self._send_sequence_nack is None:
            return
        if self._missing_sequences and not self._sequence_check_pending:
            self._sequence_check_pending = True
            self.loop.schedule(self.config.nack_check_margin_s, self._check_sequences)

    def _sequence_gaps(self) -> list[int]:
        """Sequence numbers below the highest seen that have not arrived."""
        return sorted(
            sequence
            for sequence in self._missing_sequences
            if self._missing_sequence_rounds.get(sequence, 0) < self.config.max_nack_rounds
        )

    def _check_sequences(self) -> None:
        self._sequence_check_pending = False
        gaps = self._sequence_gaps()
        if not gaps:
            return
        for sequence in gaps:
            self._missing_sequence_rounds[sequence] = (
                self._missing_sequence_rounds.get(sequence, 0) + 1
            )
        request = SequenceNackRequest(
            missing_sequences=tuple(gaps),
            request_time=self.loop.now,
        )
        if self._send_sequence_nack is not None:
            self._send_sequence_nack(request)
        self._sequence_check_pending = True
        self.loop.schedule(self.config.nack_retry_interval_s, self._check_sequences)


class VideoTransportSession:
    """A complete sender/receiver pair over an emulated uplink and feedback path.

    The feedback path carries NACKs from the receiver back to the sender with
    its own propagation delay (the downlink in the paper's asymmetric setup).
    """

    def __init__(
        self,
        uplink_config: Optional[PathConfig] = None,
        feedback_config: Optional[PathConfig] = None,
        transport_config: Optional[TransportConfig] = None,
        on_frame: Optional[Callable[[FrameDeliveryEvent], None]] = None,
    ) -> None:
        self.loop = EventLoop()
        self.transport_config = transport_config or TransportConfig()
        self.stats = TransportStats()

        uplink_config = uplink_config or PathConfig()
        feedback_config = feedback_config or PathConfig(
            bandwidth_bps=uplink_config.bandwidth_bps,
            propagation_delay_s=uplink_config.propagation_delay_s,
            loss_model=BernoulliLoss(0.0),
            seed=uplink_config.seed + 1,
        )

        self.uplink = EmulatedPath(self.loop, uplink_config, self._deliver_uplink)
        self.feedback = EmulatedPath(self.loop, feedback_config, self._deliver_feedback)

        self.receiver = VideoReceiver(
            self.loop,
            self.transport_config,
            self.stats,
            send_nack=self._queue_nack,
            on_frame=on_frame,
            send_sequence_nack=self._queue_sequence_nack,
        )
        self.sender = VideoSender(self.loop, self.uplink, self.transport_config, self.stats)
        self._nack_sequence = 0

    # --- wiring ---------------------------------------------------------

    def _deliver_uplink(self, packet: Packet, arrival_time: float) -> None:
        self.receiver.on_packet(packet, arrival_time)

    def _queue_nack(self, request: NackRequest) -> None:
        packet = Packet(
            sequence=self._nack_sequence,
            frame_id=request.frame_id,
            index_in_frame=0,
            packets_in_frame=1,
            size_bytes=request.size_bytes,
            capture_time=request.request_time,
            send_time=self.loop.now,
            packet_type=PacketType.NACK,
            metadata={"request": request},
        )
        self._nack_sequence += 1
        self.feedback.send(packet)

    def _queue_sequence_nack(self, request: SequenceNackRequest) -> None:
        packet = Packet(
            sequence=self._nack_sequence,
            frame_id=-1,
            index_in_frame=0,
            packets_in_frame=1,
            size_bytes=request.size_bytes,
            capture_time=request.request_time,
            send_time=self.loop.now,
            packet_type=PacketType.NACK,
            metadata={"request": request},
        )
        self._nack_sequence += 1
        self.feedback.send(packet)

    def _deliver_feedback(self, packet: Packet, arrival_time: float) -> None:
        request = packet.metadata.get("request")
        if isinstance(request, NackRequest):
            self.sender.on_nack(request)
        elif isinstance(request, SequenceNackRequest):
            self.sender.on_sequence_nack(request)

    # --- driving --------------------------------------------------------

    def send_frame(self, frame_id: int, size_bytes: int, capture_time: Optional[float] = None) -> None:
        capture = self.loop.now if capture_time is None else capture_time
        self.sender.send_frame(frame_id, size_bytes, capture)

    def run(self, until: Optional[float] = None) -> None:
        if until is None:
            self.loop.run_until_idle()
        else:
            self.loop.run(until=until)


@dataclass
class FixedBitrateWorkload:
    """A constant-bitrate video source: ``bitrate_bps`` split across ``fps`` frames.

    ``iframe_interval`` and ``iframe_scale`` optionally make every Nth frame
    larger, mimicking the I/P structure of a real encoder, while keeping the
    long-run average at the target bitrate.
    """

    bitrate_bps: float
    fps: float = 30.0
    iframe_interval: int = 0
    iframe_scale: float = 3.0
    size_jitter: float = 0.0
    seed: int = 0

    def frame_sizes(self, count: int) -> np.ndarray:
        if count <= 0:
            return np.zeros(0, dtype=int)
        base = self.bitrate_bps / self.fps / 8.0
        sizes = np.full(count, base, dtype=float)
        if self.iframe_interval and self.iframe_interval > 0:
            is_iframe = np.arange(count) % self.iframe_interval == 0
            n_i = int(is_iframe.sum())
            n_p = count - n_i
            if n_p > 0:
                # Preserve the average: scale I-frames up, P-frames down.
                p_scale = (count - n_i * self.iframe_scale) / n_p
                p_scale = max(p_scale, 0.1)
                sizes[is_iframe] = base * self.iframe_scale
                sizes[~is_iframe] = base * p_scale
        if self.size_jitter > 0:
            rng = np.random.default_rng(self.seed)
            sizes *= rng.normal(1.0, self.size_jitter, size=count).clip(0.3, 3.0)
        return np.maximum(sizes, 1).astype(int)


def run_fixed_bitrate_session(
    bitrate_bps: float,
    duration_s: float,
    fps: float = 30.0,
    uplink_config: Optional[PathConfig] = None,
    feedback_config: Optional[PathConfig] = None,
    transport_config: Optional[TransportConfig] = None,
    workload: Optional[FixedBitrateWorkload] = None,
) -> TransportStats:
    """Run a constant-bitrate transmission and return per-frame statistics.

    This is the primitive behind the Figure 3 reproduction: sweep
    ``bitrate_bps`` and the path loss rate, and look at the frame
    transmission latency distribution.
    """
    session = VideoTransportSession(uplink_config, feedback_config, transport_config)
    workload = workload or FixedBitrateWorkload(bitrate_bps=bitrate_bps, fps=fps)
    frame_count = max(1, int(round(duration_s * workload.fps)))
    # One bulk conversion to native ints instead of a numpy-scalar unwrap per
    # scheduled frame.
    sizes = workload.frame_sizes(frame_count).tolist()
    interval = 1.0 / workload.fps

    for frame_id in range(frame_count):
        capture_time = frame_id * interval

        def _send(frame_id: int = frame_id, size: int = sizes[frame_id], t: float = capture_time) -> None:
            session.send_frame(frame_id, size, capture_time=t)

        session.loop.schedule_at(capture_time, _send)

    # Allow in-flight retransmissions to settle after the last frame is sent.
    session.run(until=duration_s + 5.0)
    return session.stats
