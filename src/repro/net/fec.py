"""Forward error correction (FEC) over packet groups.

Traditional RTC stacks (the paper cites Tambur, Hairpin, GRACE) add parity
packets so that a limited number of losses can be repaired without waiting a
round trip for retransmission.  We implement XOR-parity FEC over fixed-size
groups of a frame's packets: one parity packet per group repairs any single
loss inside that group.  The AI-oriented transport can trade this redundancy
off against the ultra-low-bitrate operating point of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from .emulator import fastpath_enabled
from .packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .packet import FrameAssembler, Packetizer


def _xor_payloads_scalar(payloads: list[bytes], size: int) -> bytes:
    """Reference XOR over python bytearrays, one byte at a time.

    This is the shape of parity coding most textbook implementations start
    from; it allocates a fresh buffer per group and pays a Python-level loop
    per byte.  Kept as the ``REPRO_NET_FASTPATH=0`` baseline the vectorized
    path is benchmarked against.
    """
    out = bytearray(size)
    for payload in payloads:
        for i, byte in enumerate(payload):
            out[i] ^= byte
    return bytes(out)


class _XorScratch:
    """Reusable ``numpy.uint8`` scratch for XOR parity.

    One buffer is reused across groups so steady-state coding performs no
    allocations beyond the final ``tobytes`` copy.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer: Optional[np.ndarray] = None

    def xor(self, payloads: list[bytes], size: int) -> bytes:
        buffer = self._buffer
        if buffer is None or len(buffer) < size:
            self._buffer = buffer = np.zeros(max(2048, size), dtype=np.uint8)
        view = buffer[:size]
        view[:] = 0
        for payload in payloads:
            view[: len(payload)] ^= np.frombuffer(payload, dtype=np.uint8)
        return view.tobytes()


def xor_payloads(
    payloads: list[bytes], size: int, scratch: Optional[_XorScratch] = None
) -> Optional[bytes]:
    """XOR ``payloads`` (zero-padded to ``size``); None if any is missing."""
    if not payloads or any(p is None for p in payloads):
        return None
    if scratch is not None:
        return scratch.xor(payloads, size)
    return _xor_payloads_scalar(payloads, size)


@dataclass(slots=True)
class FecConfig:
    """FEC configuration.

    ``group_size`` data packets are protected by one parity packet, so the
    redundancy overhead is ``1 / group_size``.
    """

    group_size: int = 5

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size must be at least 1")

    @property
    def overhead_ratio(self) -> float:
        return 1.0 / self.group_size


class FecEncoder:
    """Produces parity packets for each frame's packet groups.

    FEC packets live in their own sequence space so they do not create gaps
    in the video sequence numbering used for NACK-based loss detection.
    """

    def __init__(self, config: FecConfig) -> None:
        self.config = config
        self._next_fec_sequence = 0
        # Payload coding mode is fixed at construction, like every other
        # fast-path toggle: numpy uint8 views vs the per-byte reference.
        self._scratch = _XorScratch() if fastpath_enabled() else None

    def protect(self, packets: list[Packet], packetizer: "Packetizer" = None) -> list[Packet]:
        """Build one parity packet per ``group_size`` consecutive data packets.

        When the covered packets carry payloads, the parity packet carries
        their XOR (zero-padded to the group's largest payload), so a single
        loss per group is recoverable bit-for-bit.
        """
        parity_packets: list[Packet] = []
        group = self.config.group_size
        for start in range(0, len(packets), group):
            members = packets[start : start + group]
            covered = tuple(p.index_in_frame for p in members)
            size = max(p.size_bytes for p in members)
            payload = xor_payloads([p.payload for p in members], size, self._scratch)
            parity = Packet(
                sequence=self._next_fec_sequence,
                frame_id=members[0].frame_id,
                index_in_frame=-1 - (start // group),
                packets_in_frame=members[0].packets_in_frame,
                size_bytes=size,
                capture_time=members[0].capture_time,
                packet_type=PacketType.FEC,
                payload=payload,
                metadata={"covers": covered, "sizes": tuple(p.size_bytes for p in members)},
            )
            self._next_fec_sequence += 1
            parity_packets.append(parity)
        return parity_packets

    def protect_burst(
        self,
        frame_id: int,
        count: int,
        sizes: "np.ndarray | list[int]",
        capture_time: float,
    ) -> list[Packet]:
        """Parity packets for a payload-less frame burst (the batched sender).

        The block-mode sender describes a frame as ``(first_sequence, count,
        sizes)`` without materialising data packets, so parity is derived
        from the sizes directly.  Matches :meth:`protect` over
        ``packetize()``'s packets exactly: same sequence allocation, same
        covered-index and size metadata, and the same ``None`` payload that
        :func:`xor_payloads` produces when the covered packets carry no
        bytes (transport sessions are size-only simulations).
        """
        parity_packets: list[Packet] = []
        group = self.config.group_size
        for start in range(0, count, group):
            stop = min(start + group, count)
            member_sizes = tuple(int(sizes[i]) for i in range(start, stop))
            parity = Packet(
                sequence=self._next_fec_sequence,
                frame_id=frame_id,
                index_in_frame=-1 - (start // group),
                packets_in_frame=count,
                size_bytes=max(member_sizes),
                capture_time=capture_time,
                packet_type=PacketType.FEC,
                payload=None,
                metadata={"covers": tuple(range(start, stop)), "sizes": member_sizes},
            )
            self._next_fec_sequence += 1
            parity_packets.append(parity)
        return parity_packets


class FecDecoder:
    """Recovers a single missing data packet per parity group.

    The decoder tracks which data packets of each frame have been seen.  When
    a parity packet arrives and exactly one of its covered packets is
    missing, that packet is reconstructed (its size is taken from the parity
    metadata — for latency accounting the payload content is irrelevant).
    A covered packet only counts as missing once there is loss evidence (see
    :meth:`_has_loss_evidence`); until then parity is held pending so that
    jitter-reordered packets still in flight are not "recovered" and later
    delivered twice.  Reconstructing from parity plus the rest of the group
    is always a valid XOR decode, but when the reconstructed packet's
    original arrives anyway (it was in flight, or a retransmission raced the
    repair) the reconstruction did not fix a loss: it is reclassified from
    ``recovered_packets`` to ``spurious_recoveries`` so the repair counter
    only reflects packets FEC uniquely delivered.
    """

    # How many frames of reordering to tolerate before giving up on an
    # original confirming a reconstruction as spurious.
    _UNCONFIRMED_HORIZON_FRAMES = 8
    # Sender-clock seconds before an incomplete frame's decoder state
    # (pending parity, seen packets) is considered abandoned.  The default
    # exceeds the default NACK give-up point (max_nack_rounds ×
    # nack_retry_interval_s ≈ 1.3 s) so pruning never races an ongoing
    # repair; the transport passes a value derived from its actual config.
    DEFAULT_STALE_TIMEOUT_S = 2.0

    def __init__(
        self, config: Optional[FecConfig], stale_timeout_s: Optional[float] = None
    ) -> None:
        self.config = config
        self.stale_timeout_s = (
            self.DEFAULT_STALE_TIMEOUT_S if stale_timeout_s is None else stale_timeout_s
        )
        self._scratch = _XorScratch() if fastpath_enabled() else None
        self._seen: dict[int, dict[int, Packet]] = {}
        self._pending_parity: dict[int, list[Packet]] = {}
        self._unconfirmed: dict[int, set[int]] = {}
        self._highest_frame_seen = -1
        self._latest_capture_time = float("-inf")
        self.recovered_packets = 0
        self.spurious_recoveries = 0

    def on_data_packet(
        self, packet: Packet, assembler: Optional["FrameAssembler"] = None
    ) -> list[Packet]:
        """Record a data packet and retry parity held back so far.

        A parity packet that arrives while two or more of its covered packets
        are missing cannot repair anything yet, but a later data arrival (for
        example a retransmission) can reduce the hole to exactly one packet.
        A packet of a previously unseen frame is also fresh loss evidence
        for every earlier frame whose parity outran its data, so those
        pending frames are retried too.  Returns any packets newly recovered
        by such pending parity.
        """
        self._latest_capture_time = max(self._latest_capture_time, packet.capture_time)
        new_evidence = packet.frame_id > self._highest_frame_seen
        if new_evidence:
            self._highest_frame_seen = packet.frame_id
            self._prune_stale()
        self._confirm_spurious(packet)
        if assembler is not None and assembler.is_complete(packet.frame_id):
            # Late duplicate for a finished frame: track nothing, and drop
            # any state so long sessions don't accumulate per-frame dicts.
            self.on_frame_complete(packet.frame_id)
            return []
        self._seen.setdefault(packet.frame_id, {})[packet.index_in_frame] = packet
        if assembler is None:
            return []
        recovered: list[Packet] = []
        if new_evidence:
            # A first packet of a new frame is fresh loss evidence for every
            # earlier pending frame; otherwise only this packet's own frame
            # can have changed state.
            for frame_id in sorted(f for f in self._pending_parity if f != packet.frame_id):
                recovered.extend(self._retry_pending(frame_id, assembler))
        recovered.extend(self._retry_pending(packet.frame_id, assembler))
        return recovered

    def on_fec_packet(
        self, parity: Packet, assembler: "FrameAssembler"
    ) -> list[Packet]:
        """Attempt recovery with a parity packet.

        Returns recovered packets — possibly of *earlier* frames too: a
        parity of a new frame is loss evidence for every older pending
        frame, exactly like a data packet of a new frame.
        """
        self._latest_capture_time = max(self._latest_capture_time, parity.capture_time)
        recovered: list[Packet] = []
        if parity.frame_id > self._highest_frame_seen:
            self._highest_frame_seen = parity.frame_id
            self._prune_stale()
            for frame_id in sorted(f for f in self._pending_parity if f != parity.frame_id):
                recovered.extend(self._retry_pending(frame_id, assembler))
        if assembler.is_complete(parity.frame_id):
            self.on_frame_complete(parity.frame_id)
            return recovered
        covers = parity.metadata.get("covers", ())
        unaccounted = self._unaccounted(covers, parity.frame_id, assembler)
        if not unaccounted:
            return recovered  # Everything this parity covers has arrived.
        if self._has_loss_evidence(parity.frame_id, assembler) and len(unaccounted) == 1:
            recovered.append(self._recover(parity, min(unaccounted)))
        else:
            # Either no loss evidence yet (the unaccounted packets may still
            # be in flight) or more losses than the parity can fix.  Keep the
            # parity around: a later arrival may provide the evidence or close
            # the gap down to one packet, at which point it becomes useful.
            self._pending_parity.setdefault(parity.frame_id, []).append(parity)
        return recovered

    def on_frame_complete(self, frame_id: int) -> None:
        """Drop per-frame state once a frame is fully reassembled."""
        self._pending_parity.pop(frame_id, None)
        self._seen.pop(frame_id, None)

    @property
    def pending_parity_frames(self) -> int:
        return len(self._pending_parity)

    def has_pending(self, frame_id: int) -> bool:
        """Whether parity for ``frame_id`` is being held for lack of loss
        evidence or because its group has more than one hole."""
        return frame_id in self._pending_parity

    def flush_frame(self, frame_id: int, assembler: "FrameAssembler") -> list[Packet]:
        """Retry ``frame_id``'s pending parity presuming unaccounted packets
        are lost.

        Loss evidence normally comes from a later arrival, so parity held
        for a frame at the tail of a burst (or of the whole session) would
        otherwise never be retried.  The caller invokes this once enough
        time has passed that reordered in-flight packets must have landed —
        the same timeout reasoning the NACK machinery uses.
        """
        return self._retry_pending(frame_id, assembler, assume_loss=True)

    def _unaccounted(
        self, covers: tuple[int, ...], frame_id: int, assembler: "FrameAssembler"
    ) -> set[int]:
        """Covered indices neither received by the assembler nor seen (or
        recovered) by the decoder — seen packets may not have reached the
        assembler yet when this is called mid-delivery.

        When no packet of the frame has reached the assembler at all, every
        covered index not seen by the decoder is unaccounted for:
        ``FrameAssembler.missing_indices`` returns ``()`` for unknown frames.
        """
        if assembler.capture_time(frame_id) is None:
            unaccounted = set(covers)
        else:
            still = set(assembler.missing_indices(frame_id))
            unaccounted = {index for index in covers if index in still}
        unaccounted -= set(self._seen.get(frame_id, {}))
        return unaccounted

    def _has_loss_evidence(self, frame_id: int, assembler: "FrameAssembler") -> bool:
        """Whether unaccounted packets of ``frame_id`` can be presumed lost.

        An unaccounted packet may simply be in flight behind jitter-induced
        reordering; treating it as lost would fabricate a recovery for a
        packet that was never dropped (and later arrives as a duplicate).
        Evidence that the hole is a real loss: the frame is known to the
        assembler (its delivery has started, so the NACK machinery's view of
        missing indices applies), or a packet of a *later* frame has been
        observed (frames are sent in order, so this frame's transmission is
        over).
        """
        if assembler.capture_time(frame_id) is not None:
            return True
        return self._highest_frame_seen > frame_id

    def _recover(self, parity: Packet, index: int) -> Packet:
        # sequence=-1: the parity's sequence lives in the FEC space, and a
        # reconstructed packet must not be mistaken for the video-space
        # packet of the same number (it would cancel that packet's
        # sequence-gap NACK).  Gap tracking skips negative sequences.
        recovered = Packet(
            sequence=-1,
            frame_id=parity.frame_id,
            index_in_frame=index,
            packets_in_frame=parity.packets_in_frame,
            size_bytes=parity.size_bytes,
            capture_time=parity.capture_time,
            send_time=parity.send_time,
            packet_type=PacketType.VIDEO,
            payload=self._recover_payload(parity, index),
            metadata={"recovered_by_fec": True},
        )
        self._seen.setdefault(parity.frame_id, {})[index] = recovered
        self._unconfirmed.setdefault(parity.frame_id, set()).add(index)
        self.recovered_packets += 1
        return recovered

    def _recover_payload(self, parity: Packet, index: int) -> Optional[bytes]:
        """Rebuild the missing packet's bytes: parity XOR the survivors.

        Returns None when the parity carries no payload (size-only
        simulation) or any surviving packet's payload is unavailable.
        """
        if parity.payload is None:
            return None
        covers = parity.metadata.get("covers", ())
        seen = self._seen.get(parity.frame_id, {})
        payloads: list[bytes] = [parity.payload]
        for covered in covers:
            if covered == index:
                continue
            survivor = seen.get(covered)
            if survivor is None or survivor.payload is None:
                return None
            payloads.append(survivor.payload)
        recovered = xor_payloads(payloads, parity.size_bytes, self._scratch)
        sizes = parity.metadata.get("sizes")
        if recovered is not None and sizes is not None:
            position = covers.index(index)
            recovered = recovered[: sizes[position]]
        return recovered

    def _confirm_spurious(self, packet: Packet) -> None:
        """Reclassify a reconstruction whose original arrived after all.

        Only the original transmission proves the packet was merely in
        flight behind reordering, never lost.  A retransmission arriving
        after the repair (the sequence-gap NACK machinery does not know FEC
        filled the hole) says nothing about the original's fate.
        """
        if packet.packet_type is not PacketType.VIDEO or packet.metadata.get(
            "recovered_by_fec"
        ):
            return
        pending = self._unconfirmed.get(packet.frame_id)
        if not pending or packet.index_in_frame not in pending:
            return
        pending.discard(packet.index_in_frame)
        if not pending:
            del self._unconfirmed[packet.frame_id]
        self.recovered_packets -= 1
        self.spurious_recoveries += 1

    def _prune_stale(self) -> None:
        """Bound per-frame state across a session.

        Reconstructions too old for a late original to still show up stand
        as real repairs; frames whose capture time is more than
        ``stale_timeout_s`` behind the newest — past the NACK machinery's
        give-up point — release their pending parity and seen packets
        (frames that complete are purged promptly by
        :meth:`on_frame_complete` — this catches the ones that never do).
        """
        horizon = self._highest_frame_seen - self._UNCONFIRMED_HORIZON_FRAMES
        for frame_id in [f for f in self._unconfirmed if f < horizon]:
            del self._unconfirmed[frame_id]
        cutoff = self._latest_capture_time - self.stale_timeout_s
        for frame_id, parities in list(self._pending_parity.items()):
            if parities[0].capture_time < cutoff:
                del self._pending_parity[frame_id]
        for frame_id, seen in list(self._seen.items()):
            if seen and next(iter(seen.values())).capture_time < cutoff:
                del self._seen[frame_id]

    def _retry_pending(
        self, frame_id: int, assembler: "FrameAssembler", assume_loss: bool = False
    ) -> list[Packet]:
        pending = self._pending_parity.get(frame_id)
        if not pending:
            return []
        if assembler.is_complete(frame_id):
            self.on_frame_complete(frame_id)
            return []
        recovered: list[Packet] = []
        remaining: list[Packet] = []
        for parity in pending:
            covers = parity.metadata.get("covers", ())
            unaccounted = self._unaccounted(covers, frame_id, assembler)
            if not unaccounted:
                continue  # Everything this parity covers has arrived.
            if assume_loss or self._has_loss_evidence(frame_id, assembler):
                missing = sorted(unaccounted)
            else:
                missing = []
            if len(missing) == 1:
                packet = self._recover(parity, missing[0])
                recovered.append(packet)
            else:
                remaining.append(parity)
        if remaining:
            self._pending_parity[frame_id] = remaining
        else:
            self._pending_parity.pop(frame_id, None)
        return recovered


def fec_recovery_probability(packet_count: int, loss_rate: float, group_size: int) -> float:
    """Analytic probability that a frame is decodable in one shot with XOR FEC.

    A frame of ``packet_count`` packets split into groups of ``group_size``
    (each with one parity packet) is decodable if every group loses at most
    one of its ``k + 1`` packets.  Used to sanity-check the simulator and to
    size redundancy in the traditional-RTC baseline.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss_rate must be in [0, 1)")
    if packet_count <= 0:
        return 1.0
    probability = 1.0
    remaining = packet_count
    while remaining > 0:
        k = min(group_size, remaining)
        n = k + 1
        p_ok = (1 - loss_rate) ** n + n * loss_rate * (1 - loss_rate) ** (n - 1)
        # Floating-point rounding can push the binomial sum marginally above
        # 1.0 for tiny loss rates; the true probability is bounded by 1.
        probability *= min(max(p_ok, 0.0), 1.0)
        remaining -= k
    return probability
