"""Forward error correction (FEC) over packet groups.

Traditional RTC stacks (the paper cites Tambur, Hairpin, GRACE) add parity
packets so that a limited number of losses can be repaired without waiting a
round trip for retransmission.  We implement XOR-parity FEC over fixed-size
groups of a frame's packets: one parity packet per group repairs any single
loss inside that group.  The AI-oriented transport can trade this redundancy
off against the ultra-low-bitrate operating point of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .packet import FrameAssembler, Packetizer


@dataclass
class FecConfig:
    """FEC configuration.

    ``group_size`` data packets are protected by one parity packet, so the
    redundancy overhead is ``1 / group_size``.
    """

    group_size: int = 5

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size must be at least 1")

    @property
    def overhead_ratio(self) -> float:
        return 1.0 / self.group_size


class FecEncoder:
    """Produces parity packets for each frame's packet groups.

    FEC packets live in their own sequence space so they do not create gaps
    in the video sequence numbering used for NACK-based loss detection.
    """

    def __init__(self, config: FecConfig) -> None:
        self.config = config
        self._next_fec_sequence = 0

    def protect(self, packets: list[Packet], packetizer: "Packetizer" = None) -> list[Packet]:
        """Build one parity packet per ``group_size`` consecutive data packets."""
        parity_packets: list[Packet] = []
        group = self.config.group_size
        for start in range(0, len(packets), group):
            members = packets[start : start + group]
            covered = tuple(p.index_in_frame for p in members)
            size = max(p.size_bytes for p in members)
            parity = Packet(
                sequence=self._next_fec_sequence,
                frame_id=members[0].frame_id,
                index_in_frame=-1 - (start // group),
                packets_in_frame=members[0].packets_in_frame,
                size_bytes=size,
                capture_time=members[0].capture_time,
                packet_type=PacketType.FEC,
                metadata={"covers": covered},
            )
            self._next_fec_sequence += 1
            parity_packets.append(parity)
        return parity_packets


class FecDecoder:
    """Recovers a single missing data packet per parity group.

    The decoder tracks which data packets of each frame have been seen.  When
    a parity packet arrives and exactly one of its covered packets is
    missing, that packet is reconstructed (its size is taken from the parity
    metadata — for latency accounting the payload content is irrelevant).
    """

    def __init__(self, config: Optional[FecConfig]) -> None:
        self.config = config
        self._seen: dict[int, dict[int, Packet]] = {}
        self._pending_parity: dict[int, list[Packet]] = {}
        self.recovered_packets = 0

    def on_data_packet(
        self, packet: Packet, assembler: Optional["FrameAssembler"] = None
    ) -> list[Packet]:
        """Record a data packet and retry parity held back for its frame.

        A parity packet that arrives while two or more of its covered packets
        are missing cannot repair anything yet, but a later data arrival (for
        example a retransmission) can reduce the hole to exactly one packet.
        Returns any packets newly recovered by such pending parity.
        """
        if assembler is not None and assembler.is_complete(packet.frame_id):
            # Late duplicate for a finished frame: track nothing, and drop
            # any state so long sessions don't accumulate per-frame dicts.
            self.on_frame_complete(packet.frame_id)
            return []
        self._seen.setdefault(packet.frame_id, {})[packet.index_in_frame] = packet
        if assembler is None:
            return []
        return self._retry_pending(packet.frame_id, assembler)

    def on_fec_packet(
        self, parity: Packet, assembler: "FrameAssembler"
    ) -> list[Packet]:
        """Attempt recovery with a parity packet.  Returns recovered packets."""
        if assembler.is_complete(parity.frame_id):
            self.on_frame_complete(parity.frame_id)
            return []
        covers = parity.metadata.get("covers", ())
        missing = self._missing_covered(covers, parity.frame_id, assembler)
        if len(missing) != 1:
            # Either nothing to repair or more losses than the parity can fix.
            # Keep the parity around: a later retransmission may close the gap
            # down to one packet, at which point it becomes useful.
            if missing:
                self._pending_parity.setdefault(parity.frame_id, []).append(parity)
            return []
        return [self._recover(parity, missing[0])]

    def on_frame_complete(self, frame_id: int) -> None:
        """Drop per-frame state once a frame is fully reassembled."""
        self._pending_parity.pop(frame_id, None)
        self._seen.pop(frame_id, None)

    @property
    def pending_parity_frames(self) -> int:
        return len(self._pending_parity)

    def _missing_covered(
        self, covers: tuple[int, ...], frame_id: int, assembler: "FrameAssembler"
    ) -> list[int]:
        """Covered indices still missing, from the assembler's view minus
        packets the decoder has just seen or recovered (they may not have
        reached the assembler yet when this is called mid-delivery).

        When no packet of the frame has reached the assembler at all (a
        parity packet outran — or outlived — the whole group), every covered
        index counts as missing rather than none of them:
        ``FrameAssembler.missing_indices`` returns ``()`` for unknown frames.
        """
        if assembler.capture_time(frame_id) is None:
            missing = set(covers)
        else:
            still = set(assembler.missing_indices(frame_id))
            missing = {index for index in covers if index in still}
        missing -= set(self._seen.get(frame_id, {}))
        return sorted(missing)

    def _recover(self, parity: Packet, index: int) -> Packet:
        recovered = Packet(
            sequence=parity.sequence,
            frame_id=parity.frame_id,
            index_in_frame=index,
            packets_in_frame=parity.packets_in_frame,
            size_bytes=parity.size_bytes,
            capture_time=parity.capture_time,
            send_time=parity.send_time,
            packet_type=PacketType.VIDEO,
            metadata={"recovered_by_fec": True},
        )
        self._seen.setdefault(parity.frame_id, {})[index] = recovered
        self.recovered_packets += 1
        return recovered

    def _retry_pending(self, frame_id: int, assembler: "FrameAssembler") -> list[Packet]:
        pending = self._pending_parity.get(frame_id)
        if not pending:
            return []
        if assembler.is_complete(frame_id):
            self.on_frame_complete(frame_id)
            return []
        recovered: list[Packet] = []
        remaining: list[Packet] = []
        for parity in pending:
            covers = parity.metadata.get("covers", ())
            missing = self._missing_covered(covers, frame_id, assembler)
            if not missing:
                continue  # Everything this parity covers has arrived.
            if len(missing) == 1:
                packet = self._recover(parity, missing[0])
                recovered.append(packet)
            else:
                remaining.append(parity)
        if remaining:
            self._pending_parity[frame_id] = remaining
        else:
            self._pending_parity.pop(frame_id, None)
        return recovered


def fec_recovery_probability(packet_count: int, loss_rate: float, group_size: int) -> float:
    """Analytic probability that a frame is decodable in one shot with XOR FEC.

    A frame of ``packet_count`` packets split into groups of ``group_size``
    (each with one parity packet) is decodable if every group loses at most
    one of its ``k + 1`` packets.  Used to sanity-check the simulator and to
    size redundancy in the traditional-RTC baseline.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss_rate must be in [0, 1)")
    if packet_count <= 0:
        return 1.0
    probability = 1.0
    remaining = packet_count
    while remaining > 0:
        k = min(group_size, remaining)
        n = k + 1
        p_ok = (1 - loss_rate) ** n + n * loss_rate * (1 - loss_rate) ** (n - 1)
        # Floating-point rounding can push the binomial sum marginally above
        # 1.0 for tiny loss rates; the true probability is bounded by 1.
        probability *= min(max(p_ok, 0.0), 1.0)
        remaining -= k
    return probability
