"""Congestion control for the video uplink.

Traditional RTC relies on congestion control (the paper cites Google
Congestion Control for WebRTC, BBR and PCC) to keep the sending rate close
to — but below — the available bandwidth.  We implement a GCC-style
controller combining a delay-gradient (trendline) estimator with a loss-based
rate update, plus a simple AIMD controller as a second baseline.  The
AI-oriented transport of the paper deliberately operates far below the
estimate (the "yellow region" of Figure 3), which :class:`repro.net.abr`
builds on top of these estimators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(slots=True)
class RateSample:
    """One feedback report from the receiver used to update the controller."""

    timestamp: float
    receive_rate_bps: float
    loss_ratio: float
    one_way_delay_s: float


class BandwidthEstimator:
    """Interface for congestion controllers producing a target sending rate."""

    def update(self, sample: RateSample) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def estimate_bps(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(slots=True)
class GccConfig:
    """Tuning constants for the GCC-style controller."""

    initial_rate_bps: float = 1_000_000.0
    min_rate_bps: float = 50_000.0
    max_rate_bps: float = 50_000_000.0
    #: Multiplicative increase applied while the delay gradient stays flat.
    increase_factor: float = 1.08
    #: Multiplicative decrease applied on overuse (rising delay gradient).
    decrease_factor: float = 0.85
    #: Delay-gradient threshold (seconds per sample) that signals overuse.
    overuse_threshold_s: float = 0.004
    #: Loss ratio above which the loss-based controller backs off.
    high_loss_threshold: float = 0.10
    #: Loss ratio below which the loss-based controller may increase.
    low_loss_threshold: float = 0.02
    #: Window of delay samples used for the trendline estimate.
    window: int = 20


class GoogleCongestionControl(BandwidthEstimator):
    """A GCC-flavoured delay + loss based bandwidth estimator.

    The delay-based part watches the gradient of one-way delay over a sliding
    window: a rising trend means queues are building (overuse) and the rate
    is multiplicatively decreased towards the measured receive rate; a flat
    or falling trend lets the rate grow.  The loss-based part caps the rate
    when loss exceeds 10 % (as in RFC-style GCC) and allows growth below 2 %.
    """

    def __init__(self, config: Optional[GccConfig] = None) -> None:
        self.config = config or GccConfig()
        self._rate = self.config.initial_rate_bps
        self._delays: list[tuple[float, float]] = []
        self.state = "increase"

    @property
    def estimate_bps(self) -> float:
        return self._rate

    def _delay_trend(self) -> float:
        """Least-squares slope of one-way delay versus time over the window."""
        if len(self._delays) < 3:
            return 0.0
        samples = self._delays[-self.config.window :]
        times = np.asarray([t for t, _ in samples])
        delays = np.asarray([d for _, d in samples])
        times = times - times[0]
        if float(np.ptp(times)) <= 0:
            return 0.0
        slope = float(np.polyfit(times, delays, 1)[0])
        return slope

    def update(self, sample: RateSample) -> float:
        cfg = self.config
        self._delays.append((sample.timestamp, sample.one_way_delay_s))
        if len(self._delays) > 4 * cfg.window:
            self._delays = self._delays[-2 * cfg.window :]

        trend = self._delay_trend()
        overusing = trend > cfg.overuse_threshold_s
        underusing = trend < -cfg.overuse_threshold_s

        # Delay-based update.
        if overusing:
            self.state = "decrease"
            delay_rate = max(cfg.min_rate_bps, sample.receive_rate_bps * cfg.decrease_factor)
        elif underusing:
            self.state = "hold"
            delay_rate = self._rate
        else:
            self.state = "increase"
            delay_rate = self._rate * cfg.increase_factor

        # Loss-based update.
        if sample.loss_ratio > cfg.high_loss_threshold:
            loss_rate = self._rate * (1.0 - 0.5 * sample.loss_ratio)
        elif sample.loss_ratio < cfg.low_loss_threshold:
            loss_rate = self._rate * 1.05
        else:
            loss_rate = self._rate

        self._rate = float(np.clip(min(delay_rate, loss_rate), cfg.min_rate_bps, cfg.max_rate_bps))
        return self._rate


@dataclass(slots=True)
class AimdConfig:
    """Tuning constants for the AIMD controller."""

    initial_rate_bps: float = 1_000_000.0
    min_rate_bps: float = 50_000.0
    max_rate_bps: float = 50_000_000.0
    additive_increase_bps: float = 100_000.0
    multiplicative_decrease: float = 0.7
    loss_threshold: float = 0.02


class AimdController(BandwidthEstimator):
    """Classic additive-increase / multiplicative-decrease on loss."""

    def __init__(self, config: Optional[AimdConfig] = None) -> None:
        self.config = config or AimdConfig()
        self._rate = self.config.initial_rate_bps

    @property
    def estimate_bps(self) -> float:
        return self._rate

    def update(self, sample: RateSample) -> float:
        cfg = self.config
        if sample.loss_ratio > cfg.loss_threshold:
            self._rate *= cfg.multiplicative_decrease
        else:
            self._rate += cfg.additive_increase_bps
        self._rate = float(np.clip(self._rate, cfg.min_rate_bps, cfg.max_rate_bps))
        return self._rate


@dataclass(slots=True)
class FeedbackAggregator:
    """Builds :class:`RateSample` reports from receiver-side observations.

    In WebRTC this is the role of RTCP receiver reports / transport-wide
    feedback: the receiver periodically summarises how much it received, how
    much was lost, and the observed one-way delay.
    """

    interval_s: float = 0.2
    _window_start: float = 0.0
    _bytes: int = 0
    _expected_packets: int = 0
    _received_packets: int = 0
    _delays: list[float] = field(default_factory=list)

    def on_packet(self, arrival_time: float, send_time: float, size_bytes: int) -> None:
        self._bytes += size_bytes
        self._received_packets += 1
        self._delays.append(max(0.0, arrival_time - send_time))

    def on_expected(self, count: int = 1) -> None:
        self._expected_packets += count

    def maybe_report(self, now: float) -> Optional[RateSample]:
        """Emit a sample once per ``interval_s``; returns None otherwise."""
        if now - self._window_start < self.interval_s:
            return None
        duration = max(now - self._window_start, 1e-6)
        receive_rate = self._bytes * 8.0 / duration
        expected = max(self._expected_packets, self._received_packets)
        loss_ratio = 0.0 if expected == 0 else 1.0 - self._received_packets / expected
        delay = float(np.mean(self._delays)) if self._delays else 0.0
        sample = RateSample(
            timestamp=now,
            receive_rate_bps=receive_rate,
            loss_ratio=float(np.clip(loss_ratio, 0.0, 1.0)),
            one_way_delay_s=delay,
        )
        self._window_start = now
        self._bytes = 0
        self._expected_packets = 0
        self._received_packets = 0
        self._delays = []
        return sample
