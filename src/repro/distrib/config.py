"""Unified, validated timing and retry configuration for the dispatcher.

Before this module the dispatcher's timing constants were scattered as
``DEFAULT_*_S`` module globals across ``coordinator.py`` and ``worker.py``,
with nothing enforcing the relationships between them — most critically
that a worker's heartbeat interval stays well below the coordinator's
liveness timeout (a worker heartbeating *slower* than the coordinator's
patience is indistinguishable from a dead one and gets its cells requeued
forever).  :class:`DistribTimeouts` gathers every knob in one validated,
JSON-able dataclass; :class:`RetryPolicy` does the same for requeue bounds
and reconnect backoff (jittered exponential, drawn from a seeded
``np.random.Generator`` so backoff schedules replay bit-identically —
the same discipline every other random draw in this repo follows).

Both specs mirror the LossModel/controller spec idiom
(:func:`repro.net.emulator.loss_model_from_spec`): plain dicts in,
validated frozen dataclasses out, ``to_jsonable`` back — so a fault plan
or CLI invocation can carry the full timing configuration as data.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping, Optional

import numpy as np


class ConfigError(ValueError):
    """A timing/retry configuration violates a dispatcher invariant."""


@dataclass(frozen=True)
class DistribTimeouts:
    """Every dispatcher timing knob, validated as a set.

    ``heartbeat_interval_s`` (worker side) and ``heartbeat_timeout_s``
    (coordinator side) live in one dataclass precisely so the invariant
    between them is checkable: a deployment configures both from the same
    object and cannot ship a worker that heartbeats slower than the
    coordinator's patience.
    """

    #: Coordinator: delay an idle worker is told to ``wait`` before polling.
    wait_poll_s: float = 0.2
    #: Worker: how often the heartbeat thread proves liveness.
    heartbeat_interval_s: float = 2.0
    #: Coordinator: silence threshold after which a worker is presumed dead.
    heartbeat_timeout_s: float = 10.0
    #: Worker: how long the initial connect (or dial-in wait) keeps retrying.
    connect_timeout_s: float = 30.0
    #: Worker: socket receive timeout for coordinator responses.
    io_timeout_s: float = 120.0
    #: Coordinator: grace period for serving ``done`` to idle workers on close.
    linger_s: float = 1.0

    #: Safety margin required between heartbeat interval and timeout: the
    #: interval must leave room for at least two missed beats plus delivery
    #: jitter before the coordinator gives up on a healthy worker.
    MIN_HEARTBEAT_RATIO = 2.0

    def __post_init__(self) -> None:
        for name in (
            "wait_poll_s",
            "heartbeat_interval_s",
            "heartbeat_timeout_s",
            "connect_timeout_s",
            "io_timeout_s",
        ):
            value = getattr(self, name)
            if not (isinstance(value, (int, float)) and value > 0):
                raise ConfigError(f"{name} must be a positive number, got {value!r}")
        if self.linger_s < 0:
            raise ConfigError(f"linger_s must be >= 0, got {self.linger_s!r}")
        if self.heartbeat_interval_s * self.MIN_HEARTBEAT_RATIO > self.heartbeat_timeout_s:
            raise ConfigError(
                f"heartbeat interval {self.heartbeat_interval_s:g}s is too close to "
                f"the coordinator liveness timeout {self.heartbeat_timeout_s:g}s: a "
                "healthy worker would be presumed dead on one delayed beat — keep "
                f"interval <= timeout/{self.MIN_HEARTBEAT_RATIO:g}"
            )
        if self.wait_poll_s >= self.heartbeat_timeout_s:
            raise ConfigError(
                f"wait poll {self.wait_poll_s:g}s must stay below the liveness "
                f"timeout {self.heartbeat_timeout_s:g}s or idle workers read as dead"
            )

    def to_jsonable(self) -> dict[str, float]:
        return asdict(self)

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "DistribTimeouts":
        unknown = set(spec) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ConfigError(f"unknown timeout field(s): {sorted(unknown)}")
        return cls(**{key: float(value) for key, value in spec.items()})

    def override(self, **fields: Optional[float]) -> "DistribTimeouts":
        """Copy with the non-``None`` fields replaced (re-validated)."""
        updates = {key: value for key, value in fields.items() if value is not None}
        return replace(self, **updates) if updates else self


@dataclass(frozen=True)
class RetryPolicy:
    """Requeue bounds and reconnect backoff, in one validated policy.

    ``max_requeues`` bounds how many times the coordinator re-serves a cell
    whose worker died before the cell resolves to an error record.
    ``delay_s(attempt, rng)`` is the jittered exponential backoff a worker
    sleeps between reconnect attempts: drawn from the caller's seeded
    generator so a replayed chaos run schedules the same backoffs.
    """

    max_requeues: int = 2
    backoff_base_s: float = 0.2
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    #: Fractional jitter: each delay is scaled by a uniform draw from
    #: ``[1 - jitter, 1 + jitter]`` to decorrelate reconnect stampedes.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if not (isinstance(self.max_requeues, int) and self.max_requeues >= 0):
            raise ConfigError(f"max_requeues must be an int >= 0, got {self.max_requeues!r}")
        if self.backoff_base_s <= 0:
            raise ConfigError(f"backoff_base_s must be > 0, got {self.backoff_base_s!r}")
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor!r}")
        if self.backoff_max_s < self.backoff_base_s:
            raise ConfigError(
                f"backoff_max_s ({self.backoff_max_s!r}) must be >= backoff_base_s "
                f"({self.backoff_base_s!r})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter!r}")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before reconnect ``attempt`` (0-based), jittered by ``rng``."""
        base = min(self.backoff_max_s, self.backoff_base_s * self.backoff_factor**attempt)
        if self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def to_jsonable(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "RetryPolicy":
        unknown = set(spec) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ConfigError(f"unknown retry field(s): {sorted(unknown)}")
        fields = dict(spec)
        if "max_requeues" in fields:
            fields["max_requeues"] = int(fields["max_requeues"])
        return cls(**fields)

    def override(self, **fields: Optional[Any]) -> "RetryPolicy":
        """Copy with the non-``None`` fields replaced (re-validated)."""
        updates = {key: value for key, value in fields.items() if value is not None}
        return replace(self, **updates) if updates else self


#: The one place the dispatcher's default timing lives.
DEFAULT_TIMEOUTS = DistribTimeouts()
DEFAULT_RETRY = RetryPolicy()


def backoff_seed(worker_name: str) -> int:
    """Deterministic backoff-RNG seed derived from the worker's name.

    Different workers get decorrelated jitter; the same worker replays the
    same backoff schedule (the point of seeding it at all).
    """
    return int.from_bytes(hashlib.sha256(worker_name.encode("utf-8")).digest()[:4], "big")
