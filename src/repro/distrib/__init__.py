"""Distributed sweep dispatcher: multi-machine cell execution.

The sweep engine (:mod:`repro.analysis.sweeps`) already has everything a
distributed executor needs — deterministic per-cell seeds, content-hash
cache keys, and JSON-record streaming.  This package adds the missing
transport: a coordinator that serves sweep cells over a length-prefixed
JSON socket protocol (:mod:`repro.distrib.protocol`), worker agents that
pull cells, execute them through the existing cell machinery and stream
records back (:mod:`repro.distrib.worker`), and a
:class:`~repro.distrib.backend.DistributedBackend` that plugs the pair
into :class:`~repro.analysis.sweeps.SweepRunner` as a drop-in
:class:`~repro.analysis.sweeps.CellBackend`.

Start workers with::

    python -m repro.distrib.worker --connect HOST:PORT      # pull from a coordinator
    python -m repro.distrib.worker --listen PORT            # persistent agent

and sweep through them with ``examples/sweep_scenarios.py --serve`` /
``--workers`` or programmatically via ``run_sweep(..., backend=DistributedBackend(...))``.
"""

from .backend import DistributedBackend
from .config import (
    DEFAULT_RETRY,
    DEFAULT_TIMEOUTS,
    ConfigError,
    DistribTimeouts,
    RetryPolicy,
)
from .coordinator import CoordinatorStats, NoWorkersError, SweepCoordinator, WorkerStats
from .protocol import (
    PROTOCOL_VERSION,
    FrameTooLargeError,
    MessageChannel,
    ProtocolError,
    recv_message,
    send_message,
)


def __getattr__(name: str):
    # Lazy so that ``python -m repro.distrib.worker`` (or ``.chaos``) does
    # not import those modules twice (once via this package, once as
    # ``__main__``), which would trip runpy's double-import warning.
    if name in ("WorkerCellCache", "WorkerOutcome", "run_worker"):
        from . import worker

        return getattr(worker, name)
    if name in ("ChaosChannel", "FaultPlan", "fault_plan_from_spec", "sample_plans"):
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DEFAULT_RETRY",
    "DEFAULT_TIMEOUTS",
    "PROTOCOL_VERSION",
    "ChaosChannel",
    "ConfigError",
    "CoordinatorStats",
    "DistribTimeouts",
    "DistributedBackend",
    "FaultPlan",
    "FrameTooLargeError",
    "MessageChannel",
    "NoWorkersError",
    "ProtocolError",
    "RetryPolicy",
    "SweepCoordinator",
    "WorkerCellCache",
    "WorkerOutcome",
    "WorkerStats",
    "fault_plan_from_spec",
    "run_worker",
    "sample_plans",
    "send_message",
    "recv_message",
]
