"""``DistributedBackend``: plug the dispatcher into ``SweepRunner``.

The backend owns one :class:`~repro.distrib.coordinator.SweepCoordinator`
and adapts it to the :class:`~repro.analysis.sweeps.CellBackend` contract:
``execute(items)`` registers the grid's non-cached cells as tasks, serves
them to workers, and yields ``(position, record)`` pairs back to the runner
as they stream in — the runner persists them through the exact same
``_persist``/results-dir format as a local sweep, so caching and
``repro.analysis.report`` work unchanged.

Two deployment shapes:

* ``DistributedBackend(listen=("0.0.0.0", 7071))`` — bind a port and let
  workers dial in (``python -m repro.distrib.worker --connect host:7071``).
  The port is bound at construction, so ``backend.address`` is known (and
  printable) before the sweep starts — ephemeral ports work for tests.
* ``DistributedBackend(workers=["hostA:7072", "hostB:7072"])`` — dial out
  to persistent worker agents (``python -m repro.distrib.worker --listen
  7072``); both shapes can be combined.

Graceful degradation: when the worker pool empties for longer than
``startup_timeout_s`` while cells are outstanding, the backend (by default)
drains the coordinator and finishes the remaining cells through a
:class:`~repro.analysis.sweeps.LocalPoolBackend` instead of erroring — a
sweep that *can* complete locally always does.  Disable with
``local_fallback=False`` to get the original hard
:class:`~repro.distrib.coordinator.NoWorkersError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..analysis.sweeps import CellBackend, LocalPoolBackend
from .config import DistribTimeouts, RetryPolicy
from .coordinator import NoWorkersError, SweepCoordinator
from .protocol import parse_address

AddressLike = Union[str, tuple[str, int]]


def _as_address(value: AddressLike) -> tuple[str, int]:
    if isinstance(value, str):
        return parse_address(value)
    host, port = value
    return str(host), int(port)


class DistributedBackend(CellBackend):
    """Execute sweep cells on remote workers behind the dispatcher protocol.

    A backend instance serves exactly one sweep (its coordinator's task
    state is single-use); construct a fresh one per ``SweepRunner.run``.
    Cached cells never reach ``execute`` at all — the runner resolves them
    first — so ``backend.stats.dispatched`` counts genuinely executed cells.

    ``startup_timeout_s`` (default 120) bounds how long the sweep tolerates
    **zero connected workers** with cells outstanding — whether nobody ever
    dialed in or the last worker departed mid-sweep (a reconnecting worker
    resets the window); pass ``None`` to wait indefinitely.  What happens
    when it expires depends on ``local_fallback``: finish the remaining
    cells on the local pool (default) or raise :class:`NoWorkersError`.

    Timing and retry knobs come as one validated
    :class:`~repro.distrib.config.DistribTimeouts` /
    :class:`~repro.distrib.config.RetryPolicy` pair; ``max_requeues`` stays
    as a convenience override for the common case.

    ``status_json`` names a JSONL file that receives one
    :data:`~repro.distrib.protocol.STATUS_SCHEMA` fleet snapshot per
    ``status_interval_s`` (plus one terminal frame at close) — the
    machine-readable twin of ``python -m repro.distrib.monitor`` and the
    ROADMAP's autoscaling hook: a supervisor tails it and spawns or retires
    workers against ``queue_depth``.
    """

    def __init__(
        self,
        listen: Optional[AddressLike] = None,
        workers: Optional[Sequence[AddressLike]] = None,
        fingerprint: Optional[str] = None,
        timeouts: Optional[DistribTimeouts] = None,
        retry: Optional[RetryPolicy] = None,
        max_requeues: Optional[int] = None,
        startup_timeout_s: Optional[float] = 120.0,
        local_fallback: bool = True,
        fallback_processes: Optional[int] = None,
        status_json: Optional[Union[str, Path]] = None,
        status_interval_s: float = 1.0,
    ) -> None:
        if listen is None and not workers:
            raise ValueError("provide listen= and/or workers= so cells have somewhere to go")
        self._status_file = None
        if status_json is not None:
            path = Path(status_json)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._status_file = path.open("a", encoding="utf-8")
        self.coordinator = SweepCoordinator(
            fingerprint=fingerprint,
            timeouts=timeouts,
            retry=retry,
            max_requeues=max_requeues,
            status_interval_s=status_interval_s,
            status_sink=self._write_status if self._status_file is not None else None,
        )
        self.startup_timeout_s = startup_timeout_s
        self.local_fallback = local_fallback
        self.fallback_processes = fallback_processes
        self._workers = [_as_address(worker) for worker in workers or ()]
        self._used = False
        self.address: Optional[tuple[str, int]] = None
        if listen is not None:
            host, port = _as_address(listen)
            self.address = self.coordinator.bind(host, port)

    def _write_status(self, snapshot: dict) -> None:
        # Line-buffered JSONL with an explicit flush per frame: a tailing
        # supervisor sees each snapshot as soon as it is emitted.
        self._status_file.write(json.dumps(snapshot, sort_keys=True) + "\n")
        self._status_file.flush()

    @property
    def stats(self):
        return self.coordinator.stats

    def close(self) -> None:
        """Shut the coordinator down (idempotent).

        ``SweepRunner.run`` calls this even when the run dies before
        ``execute`` is consumed, so the eagerly-bound port, accept thread
        and any already-connected workers are always released.
        """
        # Coordinator first: close() emits the terminal status frame and
        # joins the emitter thread, so the sink file must still be open.
        self.coordinator.close()
        if self._status_file is not None:
            try:
                self._status_file.close()
            except OSError:
                pass
            self._status_file = None

    def describe(self) -> str:
        parts = []
        if self.address is not None:
            parts.append(f"serving on {self.address[0]}:{self.address[1]}")
        if self._workers:
            parts.append(
                "dialing " + ", ".join(f"{host}:{port}" for host, port in self._workers)
            )
        if self.local_fallback:
            parts.append("local fallback on")
        return f"distributed ({'; '.join(parts)})"

    def execute(self, items: list[tuple[int, dict]]) -> Iterable[tuple[int, dict]]:
        if self._used:
            raise RuntimeError("DistributedBackend serves exactly one sweep; build a new one")
        self._used = True
        if not items:
            self.coordinator.close()
            return
        self.coordinator.submit([(str(position), payload) for position, payload in items])
        if self._workers:
            self.coordinator.connect_workers(self._workers)
        try:
            try:
                for task_id, record in self.coordinator.results(
                    startup_timeout_s=self.startup_timeout_s
                ):
                    yield int(task_id), record
            except NoWorkersError:
                if not self.local_fallback:
                    raise
                yield from self._run_fallback()
        finally:
            self.coordinator.close()

    def _run_fallback(self) -> Iterable[tuple[int, dict]]:
        """Finish the sweep locally after the worker pool emptied.

        :meth:`SweepCoordinator.drain_for_fallback` atomically hands over
        every unresolved cell, so a presumed-dead worker delivering late
        counts as a dropped duplicate instead of double-resolving a cell
        the local pool now owns.
        """
        already, pending = self.coordinator.drain_for_fallback()
        for task_id, record in already:
            yield int(task_id), record
        if not pending:
            return
        local = LocalPoolBackend(processes=self.fallback_processes)
        try:
            for position, record in local.execute(
                [(int(task_id), payload) for task_id, payload in pending]
            ):
                self.stats.fallback_cells += 1
                yield position, record
        finally:
            local.close()
