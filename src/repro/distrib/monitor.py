"""Live fleet observatory: watch a running sweep from the outside.

Attach a read-only monitor to any coordinator (one started by
``examples/sweep_scenarios.py --serve`` or an embedded
:class:`~repro.distrib.backend.DistributedBackend`)::

    python -m repro.distrib.monitor --connect HOST:PORT

The coordinator streams one :data:`~repro.distrib.protocol.STATUS_SCHEMA`
snapshot per ``status_interval_s`` — queue depth, per-worker counters and
in-flight cells, fault classes — and the monitor renders them as a live
TTY dashboard (per-worker throughput is derived from successive frames).
``--json`` emits the raw frames as JSONL instead, and ``--once`` exits
after the first frame (smoke tests, supervisors probing a fleet).

Monitors are second-class on purpose: the handshake checks the protocol
version but **not** the source-tree fingerprint (a monitor never executes
cells, so any checkout may observe any sweep), and an attached monitor
does not count as a live worker — it cannot keep a workerless sweep from
falling back to local execution.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Iterator, Optional, TextIO

from .config import DEFAULT_TIMEOUTS
from .protocol import (
    PROTOCOL_VERSION,
    STATUS_SCHEMA,
    MessageChannel,
    ProtocolError,
    parse_address,
)


class MonitorError(RuntimeError):
    """The coordinator refused the attach, or spoke an unknown schema."""


def attach(
    address: tuple[str, int],
    connect_timeout_s: float = 10.0,
    io_timeout_s: float = DEFAULT_TIMEOUTS.io_timeout_s,
) -> MessageChannel:
    """Dial the coordinator and complete a read-only monitor handshake."""
    sock = socket.create_connection(address, timeout=connect_timeout_s)
    sock.settimeout(io_timeout_s)
    channel = MessageChannel(sock)
    ok = False
    try:
        hello = channel.recv()
        if hello is None or hello.get("type") != "hello" or hello.get("role") != "coordinator":
            raise MonitorError("peer did not identify as a coordinator")
        channel.send("hello", role="monitor", protocol=PROTOCOL_VERSION)
        reply = channel.recv()
        if reply is None:
            raise MonitorError("coordinator closed during the handshake")
        if reply.get("type") == "reject":
            raise MonitorError(f"coordinator rejected the monitor: {reply.get('reason')}")
        if reply.get("type") != "welcome":
            raise MonitorError(f"unexpected handshake reply {reply.get('type')!r}")
        ok = True
        return channel
    finally:
        if not ok:
            channel.close()


def frames(channel: MessageChannel) -> Iterator[dict]:
    """Yield ``status`` snapshots until the stream ends.

    A receive timeout is not fatal — a coordinator between frames is just
    quiet — and EOF (the coordinator closed after its terminal frame) ends
    the iteration cleanly.  A frame with a schema this monitor does not
    speak raises :class:`MonitorError` instead of being mis-rendered.
    """
    while True:
        try:
            message = channel.recv()
        except (TimeoutError, socket.timeout):
            continue
        except (OSError, ProtocolError):
            return
        if message is None:
            return
        if message.get("type") != "status":
            continue  # unknown messages are ignored (forward compatibility)
        if message.get("schema") != STATUS_SCHEMA:
            raise MonitorError(
                f"unknown status schema {message.get('schema')!r} "
                f"(this monitor speaks {STATUS_SCHEMA})"
            )
        yield message


def render_frame(frame: dict, previous: Optional[dict], out: TextIO) -> None:
    """Write one dashboard view of ``frame`` to ``out``.

    ``previous`` (the prior frame, if any) supplies the baseline for the
    per-worker throughput column; on a TTY the screen is redrawn in place.
    """
    if out.isatty():
        out.write("\x1b[H\x1b[2J")
    lines = [
        f"fleet status  seq {frame.get('seq')}  t={frame.get('elapsed_s', 0.0):7.1f}s"
        + ("  [done]" if frame.get("done") else ""),
        f"  cells    {frame.get('completed', 0)}/{frame.get('total', 0)} resolved"
        f"  ({frame.get('failed', 0)} failed, {frame.get('requeued', 0)} requeued)",
        f"  queue    {frame.get('queue_depth', 0)} pending, {frame.get('inflight', 0)} in flight",
        f"  workers  {frame.get('workers_live', 0)} live",
    ]
    prev_workers = (previous or {}).get("workers", {})
    dt = frame.get("elapsed_s", 0.0) - (previous or {}).get("elapsed_s", 0.0)
    for name, row in sorted(frame.get("workers", {}).items()):
        if previous is not None and dt > 0:
            done_delta = row.get("completed", 0) - prev_workers.get(name, {}).get("completed", 0)
            rate = f"{done_delta / dt:6.2f} cells/s"
        else:
            rate = "      -"
        lines.append(
            f"    {name:<24} inflight {row.get('inflight', 0):>3}"
            f"  completed {row.get('completed', 0):>4}"
            f"  failed {row.get('failed', 0):>3}  {rate}"
        )
    faults = frame.get("fault_classes", {})
    if faults:
        lines.append("  faults   " + ", ".join(f"{k} x{v}" for k, v in sorted(faults.items())))
    out.write("\n".join(lines) + "\n")
    out.flush()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Attach a live read-only dashboard to a running sweep coordinator."
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (examples/sweep_scenarios.py --serve)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit raw status frames as JSONL instead of the dashboard",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit after the first status frame (smoke tests, fleet probes)",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=10.0, help="seconds to wait for the dial"
    )
    parser.add_argument(
        "--io-timeout",
        type=float,
        default=DEFAULT_TIMEOUTS.io_timeout_s,
        help="socket receive timeout between frames",
    )
    args = parser.parse_args(argv)
    address = parse_address(args.connect)
    try:
        channel = attach(
            address, connect_timeout_s=args.connect_timeout, io_timeout_s=args.io_timeout
        )
    except (OSError, ProtocolError, MonitorError) as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 2
    previous: Optional[dict] = None
    try:
        for frame in frames(channel):
            if args.json:
                print(json.dumps(frame, sort_keys=True))
            else:
                render_frame(frame, previous, sys.stdout)
            previous = frame
            if args.once or frame.get("done"):
                break
    except MonitorError as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 2
    finally:
        try:
            channel.send("bye")
        except (OSError, ProtocolError):
            pass
        channel.close()
    if previous is None:
        print("monitor: stream ended before the first status frame", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
