"""The sweep coordinator: serves cells to workers, survives their deaths.

The coordinator owns the authoritative task state of one distributed sweep:
a queue of pending cells, the set of cells in flight (and on which worker),
and a stream of finished records.  Workers are untrusted to stay alive —
any connection that goes silent for longer than the heartbeat timeout, or
drops outright, has its in-flight cells requeued with bounded retries;
cells whose retries are exhausted resolve to an error record so the sweep
always completes with every cell accounted for.

Scheduling is cache-aware by construction: :class:`~repro.analysis.sweeps.
SweepRunner` resolves cached cells before any backend sees the grid, so a
cell reaching this coordinator is guaranteed to need execution — cached
cells are never dispatched, and ``stats.dispatched`` counts real work only.

Every timing knob comes from one validated
:class:`~repro.distrib.config.DistribTimeouts` and every retry bound from
one :class:`~repro.distrib.config.RetryPolicy` (see
:mod:`repro.distrib.config`) instead of scattered module constants.

The coordinator is deliberately agnostic about connection direction: it can
accept workers on a listening socket (:meth:`bind`, workers run
``python -m repro.distrib.worker --connect``) and/or dial out to persistent
worker agents (:meth:`connect_workers`, agents run ``--listen``); both paths
converge on the same per-connection session.
"""

from __future__ import annotations

import queue
import socket
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..analysis.sweeps import _package_fingerprint, error_record
from ..core import wallclock
from .config import DEFAULT_RETRY, DEFAULT_TIMEOUTS, DistribTimeouts, RetryPolicy
from .protocol import PROTOCOL_VERSION, MessageChannel, ProtocolError


class NoWorkersError(RuntimeError):
    """The worker pool stayed empty past the startup window with cells
    outstanding.  :class:`~repro.distrib.backend.DistributedBackend`
    catches this to degrade gracefully onto the local pool."""


@dataclass
class WorkerStats:
    """Per-worker operational counters (keyed by worker name, so a
    reconnecting worker's sessions accumulate into one row)."""

    sessions: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    lost: int = 0
    requeued_cells: int = 0

    def to_jsonable(self) -> dict:
        return {
            "sessions": self.sessions,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
            "lost": self.lost,
            "requeued_cells": self.requeued_cells,
        }


@dataclass
class CoordinatorStats:
    """Counters exposed for tests, logs and the CLI summary."""

    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    workers_connected: int = 0
    workers_rejected: int = 0
    workers_lost: int = 0
    connect_failures: int = 0
    #: Late results from presumed-dead workers, dropped on arrival — each
    #: one is a cell that still resolved exactly once.
    duplicates_dropped: int = 0
    #: Cells executed by the local-pool fallback after the worker pool
    #: emptied (filled in by the backend, not the coordinator).
    fallback_cells: int = 0
    #: Per-worker breakdown for the fleet hotspot report.
    per_worker: dict[str, WorkerStats] = field(default_factory=dict)

    def worker(self, name: str) -> WorkerStats:
        return self.per_worker.setdefault(name, WorkerStats())


@dataclass
class _Connection:
    """Per-connection mutable state shared with the coordinator."""

    channel: MessageChannel
    name: str
    inflight: set[str] = field(default_factory=set)


class SweepCoordinator:
    """Serves sweep cells over the dispatcher protocol.

    Lifecycle: construct, :meth:`bind` (and/or keep worker addresses for
    :meth:`connect_workers`), :meth:`submit` the cells, iterate
    :meth:`results` until every cell has resolved, then :meth:`close`.
    A coordinator serves exactly one sweep.
    """

    def __init__(
        self,
        fingerprint: Optional[str] = None,
        timeouts: Optional[DistribTimeouts] = None,
        retry: Optional[RetryPolicy] = None,
        max_requeues: Optional[int] = None,
    ) -> None:
        self.fingerprint = fingerprint if fingerprint is not None else _package_fingerprint()
        self.timeouts = timeouts if timeouts is not None else DEFAULT_TIMEOUTS
        retry = retry if retry is not None else DEFAULT_RETRY
        self.retry = retry.override(max_requeues=max_requeues)
        self.stats = CoordinatorStats()
        self.address: Optional[tuple[str, int]] = None

        self._lock = threading.Lock()
        self._tasks: dict[str, dict] = {}
        self._pending: deque[str] = deque()
        self._unresolved: set[str] = set()
        self._requeues: dict[str, int] = {}
        self._out: "queue.Queue[tuple[str, dict]]" = queue.Queue()
        self._submitted = False
        self._closed = False
        self._server: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._connections: list[_Connection] = []
        self._live_workers = 0
        # Instant the live-worker count last hit zero; drives the
        # no-workers timeout in :meth:`results`.
        self._workers_gone_since = wallclock.monotonic()

    @property
    def submitted(self) -> bool:
        """Whether the sweep's cells have been registered (chaos harnesses
        gate worker launch on this to fault the *sweep*, not the idle
        pre-submit polling)."""
        with self._lock:
            return self._submitted

    @property
    def heartbeat_timeout_s(self) -> float:
        return self.timeouts.heartbeat_timeout_s

    @property
    def max_requeues(self) -> int:
        return self.retry.max_requeues

    # -- wiring ------------------------------------------------------------

    def bind(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Listen for workers on ``(host, port)``; returns the bound address.

        Port 0 picks an ephemeral port (tests); the accept loop runs on a
        daemon thread until :meth:`close`.
        """
        if self._server is not None:
            raise RuntimeError("coordinator is already listening")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen()
        server.settimeout(0.2)
        self._server = server
        self.address = server.getsockname()[:2]
        self._spawn(self._accept_loop, name="distrib-accept")
        return self.address

    def connect_workers(self, addresses: Sequence[tuple[str, int]]) -> None:
        """Dial out to persistent worker agents (``worker --listen``).

        Each dial runs on its own thread so one unreachable agent does not
        stall the others; failures only count in ``stats.connect_failures``
        (the sweep proceeds on whatever workers remain).
        """
        for address in addresses:
            self._spawn(self._dial, address, name=f"distrib-dial-{address[0]}:{address[1]}")

    def _dial(self, address: tuple[str, int]) -> None:
        try:
            sock = socket.create_connection(address, timeout=self.timeouts.heartbeat_timeout_s)
        except OSError:
            with self._lock:
                self.stats.connect_failures += 1
            return
        self._serve_connection(sock, address)

    def _spawn(self, target, *args, name: str) -> None:
        thread = threading.Thread(target=target, args=args, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # closed
            # The liveness timeout goes on before the connection is handed
            # anywhere: no window in which a silent peer can block a read
            # forever (machine-checked by reprolint's socket-timeout rule).
            conn.settimeout(self.timeouts.heartbeat_timeout_s)
            self._spawn(self._serve_connection, conn, addr, name=f"distrib-conn-{addr}")

    # -- task state --------------------------------------------------------

    def submit(self, tasks: Sequence[tuple[str, dict]]) -> None:
        """Register the sweep's cells as ``(task_id, payload)`` pairs."""
        with self._lock:
            if self._submitted:
                raise RuntimeError("a coordinator serves exactly one sweep")
            self._submitted = True
            for task_id, payload in tasks:
                self._tasks[task_id] = payload
                self._pending.append(task_id)
                self._unresolved.add(task_id)

    def _next_action(self, connection: _Connection) -> tuple[str, Optional[str], Optional[dict]]:
        with self._lock:
            if not self._submitted:
                if self._closed:
                    # Shut down without a sweep (e.g. a fully cached grid):
                    # release polling workers cleanly.
                    return "done", None, None
                # Workers may connect before the sweep registers its cells
                # (the backend binds its port eagerly); hold them instead of
                # telling them the sweep is over before it began.
                return "wait", None, None
            if self._pending:
                task_id = self._pending.popleft()
                connection.inflight.add(task_id)
                self.stats.dispatched += 1
                self.stats.worker(connection.name).dispatched += 1
                return "task", task_id, self._tasks[task_id]
            if self._unresolved:
                return "wait", None, None
            return "done", None, None

    def _resolve(self, task_id: str, record: dict, connection: Optional[_Connection]) -> None:
        with self._lock:
            if connection is not None:
                connection.inflight.discard(task_id)
            if task_id not in self._unresolved:
                # Duplicate: a presumed-dead worker finished after requeue
                # (or after the fallback took the cell over).
                self.stats.duplicates_dropped += 1
                return
            self._unresolved.discard(task_id)
            self.stats.completed += 1
            if connection is not None:
                self.stats.worker(connection.name).completed += 1
            if record.get("error") is not None:
                self.stats.failed += 1
                if connection is not None:
                    self.stats.worker(connection.name).failed += 1
        self._out.put((task_id, record))

    def _requeue_inflight(self, connection: _Connection, reason: str, penalize: bool = True) -> None:
        """Put a lost worker's cells back in the queue (bounded retries)."""
        exhausted: list[tuple[str, dict]] = []
        with self._lock:
            for task_id in sorted(connection.inflight):
                if task_id not in self._unresolved:
                    continue
                attempts = self._requeues.get(task_id, 0) + (1 if penalize else 0)
                self._requeues[task_id] = attempts
                if attempts > self.retry.max_requeues:
                    exhausted.append((task_id, self._tasks[task_id]))
                else:
                    # Front of the queue: a requeued cell was already paid
                    # for once, so it should not also wait behind the tail.
                    self._pending.appendleft(task_id)
                    self.stats.requeued += 1
                    self.stats.worker(connection.name).requeued_cells += 1
            connection.inflight.clear()
        for task_id, payload in exhausted:
            self._resolve(
                task_id,
                error_record(
                    payload,
                    {
                        "type": "WorkerLost",
                        "message": (
                            f"worker {connection.name} lost ({reason}); "
                            f"giving up after {self.retry.max_requeues} requeues"
                        ),
                        "traceback": "",
                        # Attribution for the failure-hotspot report: which
                        # worker took the cell down with it.
                        "worker": connection.name,
                    },
                ),
                connection=None,
            )

    def _mark_lost(self, connection: _Connection) -> None:
        with self._lock:
            self.stats.workers_lost += 1
            self.stats.worker(connection.name).lost += 1

    # -- per-connection session --------------------------------------------

    def _serve_connection(self, sock: socket.socket, addr) -> None:
        channel = MessageChannel(sock)
        connection = _Connection(channel=channel, name=f"{addr[0]}:{addr[1]}")
        registered = False
        try:
            sock.settimeout(self.timeouts.heartbeat_timeout_s)
            channel.send(
                "hello",
                role="coordinator",
                protocol=PROTOCOL_VERSION,
                fingerprint=self.fingerprint,
            )
            if not self._handshake(channel, connection):
                return
            with self._lock:
                self.stats.workers_connected += 1
                self.stats.worker(connection.name).sessions += 1
                self._live_workers += 1
                registered = True
                self._connections.append(connection)
            self._session_loop(channel, connection)
        except (OSError, ProtocolError, TimeoutError) as exc:
            if connection.inflight:
                self._mark_lost(connection)
                self._requeue_inflight(connection, f"{type(exc).__name__}: {exc}")
        finally:
            if registered:
                with self._lock:
                    self._live_workers -= 1
                    if self._live_workers == 0:
                        self._workers_gone_since = wallclock.monotonic()
            channel.close()

    def _handshake(self, channel: MessageChannel, connection: _Connection) -> bool:
        message = channel.recv()
        if message is None or message.get("type") != "hello" or message.get("role") != "worker":
            return False
        if message.get("worker"):
            connection.name = str(message["worker"])
        reason = None
        if message.get("protocol") != PROTOCOL_VERSION:
            reason = (
                f"protocol version mismatch: coordinator speaks {PROTOCOL_VERSION}, "
                f"worker speaks {message.get('protocol')}"
            )
        elif message.get("fingerprint") != self.fingerprint:
            # The cell cache key folds in this fingerprint; a worker running
            # a different source tree would compute *different* results for
            # the same cache key, silently corrupting the results directory.
            reason = (
                "package fingerprint mismatch: the worker's repro source tree "
                "differs from the coordinator's — update the worker's checkout"
            )
        if reason is not None:
            with self._lock:
                self.stats.workers_rejected += 1
            channel.send("reject", reason=reason)
            return False
        channel.send("welcome")
        return True

    def _session_loop(self, channel: MessageChannel, connection: _Connection) -> None:
        while True:
            try:
                message = channel.recv()
            except (TimeoutError, socket.timeout):
                self._mark_lost(connection)
                self._requeue_inflight(
                    connection,
                    f"silent for {self.timeouts.heartbeat_timeout_s:g}s (presumed dead)",
                )
                return
            if message is None:  # EOF
                if connection.inflight:
                    self._mark_lost(connection)
                    self._requeue_inflight(connection, "connection closed")
                return
            kind = message.get("type")
            if kind == "heartbeat":
                continue
            if kind == "bye":
                # Graceful departure; anything still in flight (unexpected)
                # goes back to the queue without burning a retry.
                self._requeue_inflight(connection, "worker said bye", penalize=False)
                return
            if kind == "next":
                action, task_id, payload = self._next_action(connection)
                if action == "task":
                    channel.send("task", task_id=task_id, payload=payload)
                elif action == "wait":
                    channel.send("wait", seconds=self.timeouts.wait_poll_s)
                else:
                    channel.send("done")
                    return
            elif kind == "result":
                record = message.get("record")
                task_id = message.get("task_id")
                if isinstance(task_id, str) and isinstance(record, dict):
                    self._resolve(task_id, record, connection)
                else:
                    raise ProtocolError("malformed result message")
            # Unknown message types are ignored (forward compatibility).

    # -- consuming results -------------------------------------------------

    def results(self, startup_timeout_s: Optional[float] = None) -> Iterator[tuple[str, dict]]:
        """Yield ``(task_id, record)`` as cells resolve, until all have.

        ``startup_timeout_s`` bounds how long the sweep tolerates having
        **zero connected workers** while cells are outstanding — both at
        startup (nobody ever dialed in) and mid-sweep (the last worker
        departed, e.g. gracefully via ``--max-cells``, leaving pending cells
        that only a worker could resolve).  When the window expires a
        :class:`NoWorkersError` is raised instead of waiting forever (the
        backend catches it to fall back to local execution); a worker
        (re)connecting resets it.  While at least one worker is connected
        the sweep waits indefinitely: every dispatched cell retains a path
        to resolution through requeue-or-error.
        """
        with self._lock:
            total = len(self._tasks)
            if self._live_workers == 0:
                # Start the no-workers clock at sweep start, not at bind
                # time (the backend binds eagerly, possibly much earlier).
                self._workers_gone_since = wallclock.monotonic()
        yielded = 0
        while yielded < total:
            try:
                item = self._out.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    raise RuntimeError("coordinator closed with cells outstanding")
                if startup_timeout_s is not None:
                    with self._lock:
                        live = self._live_workers
                        gone_for = wallclock.monotonic() - self._workers_gone_since
                    if live == 0 and gone_for > startup_timeout_s:
                        raise NoWorkersError(
                            f"no worker connected for {startup_timeout_s:g}s with "
                            f"{total - yielded} cell(s) outstanding "
                            f"(serving on {self.address})"
                        )
                continue
            yielded += 1
            yield item

    def drain_for_fallback(self) -> tuple[list[tuple[str, dict]], list[tuple[str, dict]]]:
        """Atomically take over every unresolved cell for local execution.

        Returns ``(already_resolved, pending)``: records that resolved but
        were not yet consumed from the output queue, and ``(task_id,
        payload)`` pairs for every still-unresolved cell.  The unresolved
        set empties in the same locked section, so a presumed-dead worker
        delivering late is counted as a dropped duplicate rather than
        double-resolving a cell the fallback now owns — the exactly-once
        invariant survives the takeover.
        """
        with self._lock:
            already: list[tuple[str, dict]] = []
            while True:
                try:
                    already.append(self._out.get_nowait())
                except queue.Empty:
                    break
            pending = [
                (task_id, self._tasks[task_id])
                for task_id in self._tasks
                if task_id in self._unresolved
            ]
            self._unresolved.clear()
            self._pending.clear()
            for connection in self._connections:
                connection.inflight.clear()
        return already, pending

    def close(self, linger_s: Optional[float] = None) -> None:
        """Shut the coordinator down.

        Waits up to ``linger_s`` (default ``timeouts.linger_s``) for
        connection threads to finish serving ``done`` to idle workers (they
        poll within ``wait_poll_s``), then force-closes whatever remains.
        """
        if self._closed:
            return
        self._closed = True
        if linger_s is None:
            linger_s = self.timeouts.linger_s
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        deadline = wallclock.monotonic() + linger_s
        for thread in self._threads:
            remaining = deadline - wallclock.monotonic()
            if remaining > 0 and thread is not threading.current_thread():
                thread.join(timeout=remaining)
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.channel.close()
