"""The sweep coordinator: serves cells to workers, survives their deaths.

The coordinator owns the authoritative task state of one distributed sweep:
a queue of pending cells, the set of cells in flight (and on which worker),
and a stream of finished records.  Workers are untrusted to stay alive —
any connection that goes silent for longer than the heartbeat timeout, or
drops outright, has its in-flight cells requeued with bounded retries;
cells whose retries are exhausted resolve to an error record so the sweep
always completes with every cell accounted for.

Scheduling is cache-aware by construction: :class:`~repro.analysis.sweeps.
SweepRunner` resolves cached cells before any backend sees the grid, so a
cell reaching this coordinator is guaranteed to need execution — cached
cells are never dispatched, and ``stats.dispatched`` counts real work only.

Every timing knob comes from one validated
:class:`~repro.distrib.config.DistribTimeouts` and every retry bound from
one :class:`~repro.distrib.config.RetryPolicy` (see
:mod:`repro.distrib.config`) instead of scattered module constants.

The coordinator is deliberately agnostic about connection direction: it can
accept workers on a listening socket (:meth:`bind`, workers run
``python -m repro.distrib.worker --connect``) and/or dial out to persistent
worker agents (:meth:`connect_workers`, agents run ``--listen``); both paths
converge on the same per-connection session.
"""

from __future__ import annotations

import queue
import socket
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from ..analysis.sweeps import _package_fingerprint, error_record
from ..core import wallclock
from ..obs import WORKER_COUNTER_FIELDS
from .config import DEFAULT_RETRY, DEFAULT_TIMEOUTS, DistribTimeouts, RetryPolicy
from .protocol import PROTOCOL_VERSION, STATUS_SCHEMA, MessageChannel, ProtocolError


class NoWorkersError(RuntimeError):
    """The worker pool stayed empty past the startup window with cells
    outstanding.  :class:`~repro.distrib.backend.DistributedBackend`
    catches this to degrade gracefully onto the local pool."""


@dataclass
class WorkerStats:
    """Per-worker operational counters (keyed by worker name, so a
    reconnecting worker's sessions accumulate into one row).

    The field set *is* the fleet metric vocabulary
    (:data:`repro.obs.metrics.WORKER_COUNTER_FIELDS`): the live ``status``
    stream and the post-hoc hotspot tables in ``repro.analysis.report``
    both serialize these counters through :meth:`to_jsonable`, so there is
    exactly one bookkeeping site and one naming scheme.
    """

    sessions: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    lost: int = 0
    requeued_cells: int = 0

    def to_jsonable(self) -> dict:
        return {name: getattr(self, name) for name in WORKER_COUNTER_FIELDS}


# The dataclass and the shared vocabulary must never drift apart: a field
# added to one without the other fails at import time, not in a report.
assert tuple(WorkerStats.__dataclass_fields__) == WORKER_COUNTER_FIELDS


@dataclass
class CoordinatorStats:
    """Counters exposed for tests, logs and the CLI summary."""

    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    workers_connected: int = 0
    workers_rejected: int = 0
    workers_lost: int = 0
    connect_failures: int = 0
    #: Late results from presumed-dead workers, dropped on arrival — each
    #: one is a cell that still resolved exactly once.
    duplicates_dropped: int = 0
    #: Cells executed by the local-pool fallback after the worker pool
    #: emptied (filled in by the backend, not the coordinator).
    fallback_cells: int = 0
    #: Read-only ``status`` observers that completed the handshake.
    monitors_connected: int = 0
    #: Fault-class counters: error-record ``type`` -> count.  Keys are the
    #: same strings report.py's ``error_type`` hotspot axis ranks, so the
    #: live stream and the post-hoc report share one fault vocabulary.
    fault_classes: dict[str, int] = field(default_factory=dict)
    #: Per-worker breakdown for the fleet hotspot report.
    per_worker: dict[str, WorkerStats] = field(default_factory=dict)

    def worker(self, name: str) -> WorkerStats:
        return self.per_worker.setdefault(name, WorkerStats())


@dataclass
class _Connection:
    """Per-connection mutable state shared with the coordinator."""

    channel: MessageChannel
    name: str
    inflight: set[str] = field(default_factory=set)


class SweepCoordinator:
    """Serves sweep cells over the dispatcher protocol.

    Lifecycle: construct, :meth:`bind` (and/or keep worker addresses for
    :meth:`connect_workers`), :meth:`submit` the cells, iterate
    :meth:`results` until every cell has resolved, then :meth:`close`.
    A coordinator serves exactly one sweep.
    """

    def __init__(
        self,
        fingerprint: Optional[str] = None,
        timeouts: Optional[DistribTimeouts] = None,
        retry: Optional[RetryPolicy] = None,
        max_requeues: Optional[int] = None,
        status_interval_s: float = 1.0,
        status_sink: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.fingerprint = fingerprint if fingerprint is not None else _package_fingerprint()
        self.timeouts = timeouts if timeouts is not None else DEFAULT_TIMEOUTS
        retry = retry if retry is not None else DEFAULT_RETRY
        self.retry = retry.override(max_requeues=max_requeues)
        if status_interval_s <= 0:
            raise ValueError(f"status_interval_s must be positive, got {status_interval_s!r}")
        self.status_interval_s = status_interval_s
        self.status_sink = status_sink
        self.stats = CoordinatorStats()
        self.address: Optional[tuple[str, int]] = None

        self._lock = threading.Lock()
        self._tasks: dict[str, dict] = {}
        self._pending: deque[str] = deque()
        self._unresolved: set[str] = set()
        self._requeues: dict[str, int] = {}
        self._out: "queue.Queue[tuple[str, dict]]" = queue.Queue()
        self._submitted = False
        self._closed = False
        self._server: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._connections: list[_Connection] = []
        self._live_workers = 0
        # Instant the live-worker count last hit zero; drives the
        # no-workers timeout in :meth:`results`.
        self._workers_gone_since = wallclock.monotonic()
        # Status stream state: attached read-only monitors, the emitter
        # thread's stop latch, and a monotonic frame sequence number.
        self._monitors: list[MessageChannel] = []
        self._stop_status = threading.Event()
        self._status_thread_started = False
        self._status_seq = 0
        self._started_monotonic: Optional[float] = None

    @property
    def submitted(self) -> bool:
        """Whether the sweep's cells have been registered (chaos harnesses
        gate worker launch on this to fault the *sweep*, not the idle
        pre-submit polling)."""
        with self._lock:
            return self._submitted

    @property
    def heartbeat_timeout_s(self) -> float:
        return self.timeouts.heartbeat_timeout_s

    @property
    def max_requeues(self) -> int:
        return self.retry.max_requeues

    # -- wiring ------------------------------------------------------------

    def bind(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Listen for workers on ``(host, port)``; returns the bound address.

        Port 0 picks an ephemeral port (tests); the accept loop runs on a
        daemon thread until :meth:`close`.
        """
        if self._server is not None:
            raise RuntimeError("coordinator is already listening")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen()
        server.settimeout(0.2)
        self._server = server
        self.address = server.getsockname()[:2]
        self._spawn(self._accept_loop, name="distrib-accept")
        self._ensure_status_thread()
        return self.address

    def connect_workers(self, addresses: Sequence[tuple[str, int]]) -> None:
        """Dial out to persistent worker agents (``worker --listen``).

        Each dial runs on its own thread so one unreachable agent does not
        stall the others; failures only count in ``stats.connect_failures``
        (the sweep proceeds on whatever workers remain).
        """
        for address in addresses:
            self._spawn(self._dial, address, name=f"distrib-dial-{address[0]}:{address[1]}")

    def _dial(self, address: tuple[str, int]) -> None:
        try:
            sock = socket.create_connection(address, timeout=self.timeouts.heartbeat_timeout_s)
        except OSError:
            with self._lock:
                self.stats.connect_failures += 1
            return
        self._serve_connection(sock, address)

    def _spawn(self, target, *args, name: str) -> None:
        thread = threading.Thread(target=target, args=args, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # closed
            # The liveness timeout goes on before the connection is handed
            # anywhere: no window in which a silent peer can block a read
            # forever (machine-checked by reprolint's socket-timeout rule).
            conn.settimeout(self.timeouts.heartbeat_timeout_s)
            self._spawn(self._serve_connection, conn, addr, name=f"distrib-conn-{addr}")

    # -- task state --------------------------------------------------------

    def submit(self, tasks: Sequence[tuple[str, dict]]) -> None:
        """Register the sweep's cells as ``(task_id, payload)`` pairs."""
        with self._lock:
            if self._submitted:
                raise RuntimeError("a coordinator serves exactly one sweep")
            self._submitted = True
            self._started_monotonic = wallclock.monotonic()
            for task_id, payload in tasks:
                self._tasks[task_id] = payload
                self._pending.append(task_id)
                self._unresolved.add(task_id)
        # Dial-out-only coordinators never call bind(); start the status
        # stream here too so a --status-json sink still gets frames.
        self._ensure_status_thread()

    def _next_action(self, connection: _Connection) -> tuple[str, Optional[str], Optional[dict]]:
        with self._lock:
            if not self._submitted:
                if self._closed:
                    # Shut down without a sweep (e.g. a fully cached grid):
                    # release polling workers cleanly.
                    return "done", None, None
                # Workers may connect before the sweep registers its cells
                # (the backend binds its port eagerly); hold them instead of
                # telling them the sweep is over before it began.
                return "wait", None, None
            if self._pending:
                task_id = self._pending.popleft()
                connection.inflight.add(task_id)
                self.stats.dispatched += 1
                self.stats.worker(connection.name).dispatched += 1
                return "task", task_id, self._tasks[task_id]
            if self._unresolved:
                return "wait", None, None
            return "done", None, None

    def _resolve(self, task_id: str, record: dict, connection: Optional[_Connection]) -> None:
        with self._lock:
            if connection is not None:
                connection.inflight.discard(task_id)
            if task_id not in self._unresolved:
                # Duplicate: a presumed-dead worker finished after requeue
                # (or after the fallback took the cell over).
                self.stats.duplicates_dropped += 1
                return
            self._unresolved.discard(task_id)
            self.stats.completed += 1
            if connection is not None:
                self.stats.worker(connection.name).completed += 1
            error = record.get("error")
            if error is not None:
                self.stats.failed += 1
                if connection is not None:
                    self.stats.worker(connection.name).failed += 1
                # Same key report.py's ``error_type`` hotspot axis ranks.
                fault = str(error.get("type") or "Unknown") if isinstance(error, dict) else "Unknown"
                self.stats.fault_classes[fault] = self.stats.fault_classes.get(fault, 0) + 1
        self._out.put((task_id, record))

    def _requeue_inflight(self, connection: _Connection, reason: str, penalize: bool = True) -> None:
        """Put a lost worker's cells back in the queue (bounded retries)."""
        exhausted: list[tuple[str, dict]] = []
        with self._lock:
            for task_id in sorted(connection.inflight):
                if task_id not in self._unresolved:
                    continue
                attempts = self._requeues.get(task_id, 0) + (1 if penalize else 0)
                self._requeues[task_id] = attempts
                if attempts > self.retry.max_requeues:
                    exhausted.append((task_id, self._tasks[task_id]))
                else:
                    # Front of the queue: a requeued cell was already paid
                    # for once, so it should not also wait behind the tail.
                    self._pending.appendleft(task_id)
                    self.stats.requeued += 1
                    self.stats.worker(connection.name).requeued_cells += 1
            connection.inflight.clear()
        for task_id, payload in exhausted:
            self._resolve(
                task_id,
                error_record(
                    payload,
                    {
                        "type": "WorkerLost",
                        "message": (
                            f"worker {connection.name} lost ({reason}); "
                            f"giving up after {self.retry.max_requeues} requeues"
                        ),
                        "traceback": "",
                        # Attribution for the failure-hotspot report: which
                        # worker took the cell down with it.
                        "worker": connection.name,
                    },
                ),
                connection=None,
            )

    def _mark_lost(self, connection: _Connection) -> None:
        with self._lock:
            self.stats.workers_lost += 1
            self.stats.worker(connection.name).lost += 1

    # -- status stream -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Cells waiting for dispatch (pending; excludes in-flight).

        Public so supervisors (the ROADMAP's autoscaling hook) can poll
        backlog directly; the ``status`` stream reads the same state."""
        with self._lock:
            return len(self._pending)

    def inflight_by_worker(self) -> dict[str, int]:
        """Cells currently executing, keyed by worker name.

        A worker that reconnected contributes all of its live connections'
        in-flight cells to one row (names key the aggregation, exactly as
        in :class:`WorkerStats`)."""
        with self._lock:
            return self._inflight_by_worker_locked()

    def _inflight_by_worker_locked(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for connection in self._connections:
            if connection.inflight:
                counts[connection.name] = counts.get(connection.name, 0) + len(connection.inflight)
        return counts

    def status_snapshot(self) -> dict:
        """One machine-readable fleet snapshot — the ``status`` payload.

        The same dict is streamed to attached monitors, written (one JSON
        object per line) by the backend's ``--status-json`` sink, and
        available here for tests and supervisors.  Shape is versioned by
        :data:`~repro.distrib.protocol.STATUS_SCHEMA`; fields are documented
        in docs/OBSERVABILITY.md.
        """
        with self._lock:
            self._status_seq += 1
            inflight = self._inflight_by_worker_locked()
            workers = {
                name: {**stats.to_jsonable(), "inflight": inflight.get(name, 0)}
                for name, stats in sorted(self.stats.per_worker.items())
            }
            elapsed = (
                wallclock.monotonic() - self._started_monotonic
                if self._started_monotonic is not None
                else 0.0
            )
            return {
                "schema": STATUS_SCHEMA,
                "seq": self._status_seq,
                "elapsed_s": elapsed,
                "total": len(self._tasks),
                "queue_depth": len(self._pending),
                "inflight": sum(inflight.values()),
                "unresolved": len(self._unresolved),
                "dispatched": self.stats.dispatched,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "requeued": self.stats.requeued,
                "duplicates_dropped": self.stats.duplicates_dropped,
                "workers_live": self._live_workers,
                "workers": workers,
                "fault_classes": dict(sorted(self.stats.fault_classes.items())),
                "done": self._submitted and not self._unresolved,
            }

    def _ensure_status_thread(self) -> None:
        with self._lock:
            if self._status_thread_started or self._closed:
                return
            self._status_thread_started = True
        self._spawn(self._status_loop, name="distrib-status")

    def _status_loop(self) -> None:
        while not self._stop_status.wait(self.status_interval_s):
            self._emit_status()

    def _emit_status(self) -> None:
        snapshot = self.status_snapshot()
        if self.status_sink is not None:
            try:
                self.status_sink(snapshot)
            except OSError:
                # A full disk or broken pipe on the sink must not take the
                # sweep down; the next frame will try again.
                pass
        with self._lock:
            monitors = list(self._monitors)
        for channel in monitors:
            try:
                channel.send("status", **snapshot)
            except (OSError, ProtocolError):
                # A departed monitor is routine; detach and move on.
                with self._lock:
                    if channel in self._monitors:
                        self._monitors.remove(channel)
                channel.close()

    def _monitor_loop(self, channel: MessageChannel) -> None:
        with self._lock:
            self._monitors.append(channel)
        try:
            # One immediate frame so an attaching monitor renders the fleet
            # without waiting out the first interval.
            channel.send("status", **self.status_snapshot())
            while True:
                try:
                    message = channel.recv()
                except (TimeoutError, socket.timeout):
                    # Monitors are read-mostly; silence is normal, not death.
                    continue
                if message is None or message.get("type") == "bye":
                    return
                # Anything else from a monitor is ignored (forward compat).
        finally:
            with self._lock:
                if channel in self._monitors:
                    self._monitors.remove(channel)

    # -- per-connection session --------------------------------------------

    def _serve_connection(self, sock: socket.socket, addr) -> None:
        channel = MessageChannel(sock)
        connection = _Connection(channel=channel, name=f"{addr[0]}:{addr[1]}")
        registered = False
        try:
            sock.settimeout(self.timeouts.heartbeat_timeout_s)
            channel.send(
                "hello",
                role="coordinator",
                protocol=PROTOCOL_VERSION,
                fingerprint=self.fingerprint,
            )
            role = self._handshake(channel, connection)
            if role is None:
                return
            if role == "monitor":
                # Read-only observer: deliberately NOT registered as a live
                # worker — an attached monitor must not keep a workerless
                # sweep from timing out into the local fallback.
                with self._lock:
                    self.stats.monitors_connected += 1
                self._monitor_loop(channel)
                return
            with self._lock:
                self.stats.workers_connected += 1
                self.stats.worker(connection.name).sessions += 1
                self._live_workers += 1
                registered = True
                self._connections.append(connection)
            self._session_loop(channel, connection)
        except (OSError, ProtocolError, TimeoutError) as exc:
            if connection.inflight:
                self._mark_lost(connection)
                self._requeue_inflight(connection, f"{type(exc).__name__}: {exc}")
        finally:
            if registered:
                with self._lock:
                    self._live_workers -= 1
                    if self._live_workers == 0:
                        self._workers_gone_since = wallclock.monotonic()
            channel.close()

    def _handshake(self, channel: MessageChannel, connection: _Connection) -> Optional[str]:
        """Run the accept side of the handshake; returns the peer's role
        (``"worker"`` or ``"monitor"``) on success, None on refusal."""
        message = channel.recv()
        if message is None or message.get("type") != "hello":
            return None
        role = message.get("role")
        if role not in ("worker", "monitor"):
            return None
        if message.get("worker"):
            connection.name = str(message["worker"])
        reason = None
        if message.get("protocol") != PROTOCOL_VERSION:
            reason = (
                f"protocol version mismatch: coordinator speaks {PROTOCOL_VERSION}, "
                f"peer speaks {message.get('protocol')}"
            )
        elif role == "worker" and message.get("fingerprint") != self.fingerprint:
            # The cell cache key folds in this fingerprint; a worker running
            # a different source tree would compute *different* results for
            # the same cache key, silently corrupting the results directory.
            # Monitors never execute cells, so they skip this check — any
            # checkout may observe a sweep.
            reason = (
                "package fingerprint mismatch: the worker's repro source tree "
                "differs from the coordinator's — update the worker's checkout"
            )
        if reason is not None:
            with self._lock:
                self.stats.workers_rejected += 1
            channel.send("reject", reason=reason)
            return None
        channel.send("welcome")
        return role

    def _session_loop(self, channel: MessageChannel, connection: _Connection) -> None:
        while True:
            try:
                message = channel.recv()
            except (TimeoutError, socket.timeout):
                self._mark_lost(connection)
                self._requeue_inflight(
                    connection,
                    f"silent for {self.timeouts.heartbeat_timeout_s:g}s (presumed dead)",
                )
                return
            if message is None:  # EOF
                if connection.inflight:
                    self._mark_lost(connection)
                    self._requeue_inflight(connection, "connection closed")
                return
            kind = message.get("type")
            if kind == "heartbeat":
                continue
            if kind == "bye":
                # Graceful departure; anything still in flight (unexpected)
                # goes back to the queue without burning a retry.
                self._requeue_inflight(connection, "worker said bye", penalize=False)
                return
            if kind == "next":
                action, task_id, payload = self._next_action(connection)
                if action == "task":
                    channel.send("task", task_id=task_id, payload=payload)
                elif action == "wait":
                    channel.send("wait", seconds=self.timeouts.wait_poll_s)
                else:
                    channel.send("done")
                    return
            elif kind == "result":
                record = message.get("record")
                task_id = message.get("task_id")
                if isinstance(task_id, str) and isinstance(record, dict):
                    self._resolve(task_id, record, connection)
                else:
                    raise ProtocolError("malformed result message")
            # Unknown message types are ignored (forward compatibility).

    # -- consuming results -------------------------------------------------

    def results(self, startup_timeout_s: Optional[float] = None) -> Iterator[tuple[str, dict]]:
        """Yield ``(task_id, record)`` as cells resolve, until all have.

        ``startup_timeout_s`` bounds how long the sweep tolerates having
        **zero connected workers** while cells are outstanding — both at
        startup (nobody ever dialed in) and mid-sweep (the last worker
        departed, e.g. gracefully via ``--max-cells``, leaving pending cells
        that only a worker could resolve).  When the window expires a
        :class:`NoWorkersError` is raised instead of waiting forever (the
        backend catches it to fall back to local execution); a worker
        (re)connecting resets it.  While at least one worker is connected
        the sweep waits indefinitely: every dispatched cell retains a path
        to resolution through requeue-or-error.
        """
        with self._lock:
            total = len(self._tasks)
            if self._live_workers == 0:
                # Start the no-workers clock at sweep start, not at bind
                # time (the backend binds eagerly, possibly much earlier).
                self._workers_gone_since = wallclock.monotonic()
        yielded = 0
        while yielded < total:
            try:
                item = self._out.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    raise RuntimeError("coordinator closed with cells outstanding")
                if startup_timeout_s is not None:
                    with self._lock:
                        live = self._live_workers
                        gone_for = wallclock.monotonic() - self._workers_gone_since
                    if live == 0 and gone_for > startup_timeout_s:
                        raise NoWorkersError(
                            f"no worker connected for {startup_timeout_s:g}s with "
                            f"{total - yielded} cell(s) outstanding "
                            f"(serving on {self.address})"
                        )
                continue
            yielded += 1
            yield item

    def drain_for_fallback(self) -> tuple[list[tuple[str, dict]], list[tuple[str, dict]]]:
        """Atomically take over every unresolved cell for local execution.

        Returns ``(already_resolved, pending)``: records that resolved but
        were not yet consumed from the output queue, and ``(task_id,
        payload)`` pairs for every still-unresolved cell.  The unresolved
        set empties in the same locked section, so a presumed-dead worker
        delivering late is counted as a dropped duplicate rather than
        double-resolving a cell the fallback now owns — the exactly-once
        invariant survives the takeover.
        """
        with self._lock:
            already: list[tuple[str, dict]] = []
            while True:
                try:
                    already.append(self._out.get_nowait())
                except queue.Empty:
                    break
            pending = [
                (task_id, self._tasks[task_id])
                for task_id in self._tasks
                if task_id in self._unresolved
            ]
            self._unresolved.clear()
            self._pending.clear()
            for connection in self._connections:
                connection.inflight.clear()
        return already, pending

    def close(self, linger_s: Optional[float] = None) -> None:
        """Shut the coordinator down.

        Waits up to ``linger_s`` (default ``timeouts.linger_s``) for
        connection threads to finish serving ``done`` to idle workers (they
        poll within ``wait_poll_s``), then force-closes whatever remains.
        """
        if self._closed:
            return
        # One terminal frame (``done`` true on a completed sweep, final
        # counters either way) so sinks and monitors see how it ended
        # before the stream stops.
        if self._status_thread_started:
            self._emit_status()
        self._stop_status.set()
        self._closed = True
        if linger_s is None:
            linger_s = self.timeouts.linger_s
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        deadline = wallclock.monotonic() + linger_s
        for thread in self._threads:
            remaining = deadline - wallclock.monotonic()
            if remaining > 0 and thread is not threading.current_thread():
                thread.join(timeout=remaining)
        with self._lock:
            connections = list(self._connections)
            monitors = list(self._monitors)
        for connection in connections:
            connection.channel.close()
        for channel in monitors:
            channel.close()
