"""Deterministic, seeded fault injection for the distributed dispatcher.

The chaos layer sits at the exact :class:`~repro.distrib.protocol.
MessageChannel` boundary the real network occupies: a
:class:`ChaosChannel` wraps a worker's connected socket and, driven by a
seeded :class:`FaultPlan`, injects message delays, dropped/corrupt frames,
link partitions, crash-at-nth-message preemption and slow-executor stalls.
Every fault decision for the *n*-th operation of a stream is a pure
function of ``(plan.seed, worker_index, reconnect_attempt, stream, n)`` —
a fresh ``np.random.Generator`` seeded with that tuple per decision — so a
replayed plan draws the identical fault schedule regardless of OS thread
interleaving, and two runs of the same plan kill the same worker at the
same message.

Faults are injected on the **worker side only**, which exercises both
endpoints: the coordinator sees EOFs, garbage frames, oversized length
prefixes and heartbeat silence exactly as a hostile network would deliver
them.  Two modelling choices keep the injection honest about what TCP can
do:

* A "dropped" non-heartbeat message severs the connection (raises
  :class:`ChaosInjected`).  TCP cannot lose one message from a healthy
  stream; silently swallowing a ``result`` would instead model a byzantine
  worker and livelock the sweep.  Dropped *heartbeats* are silently
  swallowed — that models a stalled scheduler, and losing one is harmless
  by design (the coordinator tolerates ``MIN_HEARTBEAT_RATIO`` missed
  beats).
* Corrupt frames are written to the wire for real (truncated body, garbage
  JSON, or an absurd length prefix) before the link severs, so the
  coordinator's typed :class:`~repro.distrib.protocol.ProtocolError` /
  :class:`~repro.distrib.protocol.FrameTooLargeError` handling and requeue
  path run against actual bad bytes.

The soak driver (``python -m repro.distrib.chaos --plans N``) runs the
smoke grid under N sampled plans (plus any ``--preset``\\ s) and asserts
the convergence invariants after each: every cell resolves exactly once,
the persisted results tree is byte-identical to a fault-free baseline
(timing stripped), a re-run serves entirely from cache, reconnecting
workers re-offer cached cells instead of recomputing, and no threads leak.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

import numpy as np

from ..analysis.sweeps import (
    SweepGrid,
    SweepRunner,
    bernoulli_scenario,
    execute_cell_record,
    gilbert_elliott_scenario,
)
from ..core import wallclock
from .backend import DistributedBackend
from .config import ConfigError, DistribTimeouts
from .protocol import _HEADER, MessageChannel
from .worker import WorkerCellCache, WorkerOutcome, run_worker


class ChaosInjected(OSError):
    """A fault fired: the chaos layer severed (or refused) the operation.

    Subclasses :class:`OSError` so every existing I/O-failure path —
    worker session teardown, heartbeat thread exit, coordinator requeue —
    handles an injected fault exactly like a real one.
    """


# Per-decision RNG stream identifiers (folded into the seed tuple).
_STREAM_HEARTBEAT = 0
_STREAM_SESSION = 1
_STREAM_STALL = 2


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault schedule, JSON-able like every other spec here.

    Probabilities are per *operation* (one send or receive on the session
    stream; one heartbeat on the heartbeat stream; one cell execution for
    ``stall_prob``).  ``crash_after`` preempts the link at exactly that
    session-operation index — the kill-at-random-point knob.  A severed
    worker redials up to ``max_reconnects`` times, carrying its
    completed-cell cache so finished work is re-offered, not recomputed.
    """

    name: str
    seed: int
    delay_prob: float = 0.0
    delay_max_s: float = 0.02
    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    crash_prob: float = 0.0
    crash_after: Optional[int] = None
    #: Extra sever probability applied only to ``result`` messages — the
    #: spot-preemption sweet spot: the cell is computed (and cached) but the
    #: coordinator never hears, so it requeues and the reconnect re-offers.
    result_loss_prob: float = 0.0
    stall_prob: float = 0.0
    stall_s: float = 0.2
    max_reconnects: int = 6
    reconnect_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("fault plan needs a name")
        if not (isinstance(self.seed, int) and self.seed >= 0):
            raise ConfigError(f"seed must be an int >= 0, got {self.seed!r}")
        for prob_name in (
            "delay_prob",
            "drop_prob",
            "corrupt_prob",
            "crash_prob",
            "result_loss_prob",
            "stall_prob",
        ):
            value = getattr(self, prob_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{prob_name} must be in [0, 1], got {value!r}")
        for dur_name in ("delay_max_s", "stall_s", "reconnect_delay_s"):
            value = getattr(self, dur_name)
            if value < 0:
                raise ConfigError(f"{dur_name} must be >= 0, got {value!r}")
        if self.crash_after is not None and not (
            isinstance(self.crash_after, int) and self.crash_after >= 1
        ):
            raise ConfigError(f"crash_after must be None or an int >= 1, got {self.crash_after!r}")
        if not (isinstance(self.max_reconnects, int) and self.max_reconnects >= 0):
            raise ConfigError(f"max_reconnects must be an int >= 0, got {self.max_reconnects!r}")

    def to_jsonable(self) -> dict[str, Any]:
        return asdict(self)


def fault_plan_from_spec(spec: Mapping[str, Any]) -> FaultPlan:
    """Build a validated :class:`FaultPlan` from a plain dict (JSON round-trip)."""
    unknown = set(spec) - set(FaultPlan.__dataclass_fields__)
    if unknown:
        raise ConfigError(f"unknown fault plan field(s): {sorted(unknown)}")
    return FaultPlan(**dict(spec))


#: Named plans for CI and the CLI's ``--preset``.  Seeds are fixed so a
#: preset names one exact fault schedule, not a family.
PRESET_PLANS: dict[str, FaultPlan] = {
    "crash": FaultPlan(name="crash", seed=101, crash_after=5, max_reconnects=0),
    "partition": FaultPlan(
        name="partition", seed=202, crash_prob=0.08, result_loss_prob=0.4, max_reconnects=10
    ),
    "corrupt-frame": FaultPlan(
        name="corrupt-frame", seed=303, corrupt_prob=0.08, result_loss_prob=0.3, max_reconnects=10
    ),
    "drop": FaultPlan(name="drop", seed=404, drop_prob=0.1, max_reconnects=10),
    "delay": FaultPlan(name="delay", seed=505, delay_prob=0.5, delay_max_s=0.03),
    "stall": FaultPlan(name="stall", seed=606, stall_prob=0.5, stall_s=0.25),
}


def sample_plans(count: int, seed: int) -> list[FaultPlan]:
    """Draw ``count`` mixed fault plans from one seeded generator.

    Each plan combines independently-activated fault dimensions (including
    kill-at-a-random-message preemption), so a soak covers the cross
    products no hand-written preset list would.  Same ``(count, seed)`` →
    the same plans, field for field.
    """
    rng = np.random.default_rng(seed)
    plans = []
    for index in range(count):
        crash_after = int(rng.integers(1, 25)) if rng.random() < 0.5 else None
        plans.append(
            FaultPlan(
                name=f"sampled-{seed}-{index}",
                seed=int(rng.integers(0, 2**31)),
                delay_prob=float(rng.random() * 0.5) if rng.random() < 0.5 else 0.0,
                delay_max_s=0.02,
                drop_prob=float(rng.random() * 0.15) if rng.random() < 0.35 else 0.0,
                corrupt_prob=float(rng.random() * 0.12) if rng.random() < 0.35 else 0.0,
                crash_prob=float(rng.random() * 0.1) if rng.random() < 0.35 else 0.0,
                crash_after=crash_after,
                result_loss_prob=float(rng.random() * 0.5) if rng.random() < 0.4 else 0.0,
                stall_prob=float(rng.random() * 0.5) if rng.random() < 0.3 else 0.0,
                stall_s=0.15,
                max_reconnects=8,
                reconnect_delay_s=0.05,
            )
        )
    return plans


def _op_rng(plan: FaultPlan, worker_index: int, attempt: int, stream: int, op: int):
    """The decision generator for one operation — a pure function of its
    coordinates, so fault schedules replay identically under any thread
    interleaving."""
    return np.random.default_rng([plan.seed, worker_index, attempt, stream, op])


class ChaosChannel(MessageChannel):
    """A :class:`MessageChannel` that mis-delivers according to a plan.

    Hooks the two override points the base class exposes: ``_send_locked``
    (called with the send lock held) and ``recv``.  Session operations
    (every non-heartbeat send, every receive) share one op counter — which
    is what ``crash_after`` indexes — while heartbeats count separately, so
    heartbeat cadence never shifts the session fault schedule.
    """

    def __init__(self, sock, plan: FaultPlan, worker_index: int, attempt: int) -> None:
        super().__init__(sock)
        self._plan = plan
        self._worker_index = worker_index
        self._attempt = attempt
        self._session_ops = 0
        self._heartbeat_ops = 0

    # -- fault decisions ---------------------------------------------------

    def _session_fault(self, direction: str, message_type: Optional[str] = None) -> None:
        """Apply this session operation's faults; raises to sever the link."""
        plan = self._plan
        op = self._session_ops
        self._session_ops += 1
        if plan.crash_after is not None and op >= plan.crash_after:
            raise ChaosInjected(f"chaos: crash point reached at session op {op}")
        rng = _op_rng(plan, self._worker_index, self._attempt, _STREAM_SESSION, op)
        if plan.crash_prob and rng.random() < plan.crash_prob:
            raise ChaosInjected(f"chaos: link partitioned at session op {op}")
        if plan.delay_prob and rng.random() < plan.delay_prob:
            time.sleep(float(rng.random()) * plan.delay_max_s)
        if plan.drop_prob and rng.random() < plan.drop_prob:
            # TCP cannot drop one message from a live stream; model the loss
            # as the connection failing (the worker will redial and re-offer).
            raise ChaosInjected(f"chaos: {direction} message lost at session op {op}")
        if plan.corrupt_prob and rng.random() < plan.corrupt_prob:
            if direction == "send":
                self._send_corrupt_frame(rng)
            raise ChaosInjected(f"chaos: {direction} frame corrupted at session op {op}")
        if (
            message_type == "result"
            and plan.result_loss_prob
            and rng.random() < plan.result_loss_prob
        ):
            # The cell is computed and cached but its report never leaves the
            # worker — the canonical re-offer-after-reconnect scenario.
            raise ChaosInjected(f"chaos: result lost in transit at session op {op}")

    def _send_corrupt_frame(self, rng) -> None:
        """Put genuinely bad bytes on the wire before severing, so the
        coordinator's frame validation runs against real corruption."""
        mode = int(rng.integers(3))
        if mode == 0:  # truncated: promise 64 body bytes, deliver 7, hang up
            self.sock.sendall(_HEADER.pack(64) + b"\x00\x01\x02\x03\x04\x05\x06")
        elif mode == 1:  # well-framed garbage that is not JSON
            body = b"\xff\xfe chaos garbage \x00"
            self.sock.sendall(_HEADER.pack(len(body)) + body)
        else:  # absurd length prefix (trips FrameTooLargeError server-side)
            self.sock.sendall(_HEADER.pack(0x7FFF_FFFF))

    # -- MessageChannel override points ------------------------------------

    def _send_locked(self, message: dict) -> None:
        plan = self._plan
        if message.get("type") == "heartbeat":
            op = self._heartbeat_ops
            self._heartbeat_ops += 1
            rng = _op_rng(plan, self._worker_index, self._attempt, _STREAM_HEARTBEAT, op)
            if plan.drop_prob and rng.random() < plan.drop_prob:
                return  # a lost heartbeat is silent — liveness absorbs it
            if plan.delay_prob and rng.random() < plan.delay_prob:
                time.sleep(float(rng.random()) * plan.delay_max_s)
            super()._send_locked(message)
            return
        self._session_fault("send", message_type=message.get("type"))
        super()._send_locked(message)

    def recv(self) -> Optional[dict]:
        self._session_fault("recv")
        return super().recv()


class _StallingExecutor:
    """Wraps the cell executor with seeded slow-worker stalls and counts
    real executions (the recompute-vs-re-offer evidence)."""

    def __init__(self, plan: FaultPlan, worker_index: int, inner: Callable[[dict], dict]) -> None:
        self._plan = plan
        self._worker_index = worker_index
        self._inner = inner
        self.calls = 0

    def __call__(self, payload: dict) -> dict:
        op = self.calls
        self.calls += 1
        plan = self._plan
        if plan.stall_prob:
            # Stalls are keyed per worker (not per reconnect attempt): the
            # n-th cell a worker runs stalls identically however many times
            # the link broke before it got there.
            rng = _op_rng(plan, self._worker_index, 0, _STREAM_STALL, op)
            if rng.random() < plan.stall_prob:
                time.sleep(plan.stall_s)
        return self._inner(payload)


@dataclass
class ChaosWorkerResult:
    """Everything one chaos worker did across its reconnect attempts."""

    worker_index: int
    outcomes: list[WorkerOutcome] = field(default_factory=list)
    executed: int = 0
    cache_hits: int = 0

    @property
    def attempts(self) -> int:
        return len(self.outcomes)


def run_chaos_worker(
    address: tuple[str, int],
    plan: FaultPlan,
    worker_index: int,
    fingerprint: Optional[str] = None,
    executor: Optional[Callable[[dict], dict]] = None,
    heartbeat_interval_s: float = 0.1,
    connect_timeout_s: float = 2.0,
    io_timeout_s: float = 10.0,
) -> ChaosWorkerResult:
    """One elastic worker under chaos: dial, serve, get severed, redial.

    The :class:`~repro.distrib.worker.WorkerCellCache` is shared across
    attempts, so cells completed before a sever are re-offered on
    reconnect.  The loop ends on any voluntary outcome (``done``,
    ``rejected``, ``connect_failed`` — the coordinator is gone) or when the
    plan's reconnect budget runs out.
    """
    stalling = _StallingExecutor(plan, worker_index, executor or execute_cell_record)
    cache = WorkerCellCache()
    result = ChaosWorkerResult(worker_index=worker_index)
    for attempt in range(plan.max_reconnects + 1):
        def _factory(sock, attempt=attempt):
            return ChaosChannel(sock, plan, worker_index, attempt)

        outcome = run_worker(
            connect=address,
            fingerprint=fingerprint,
            worker_name=f"chaos-{plan.name}-w{worker_index}",
            executor=stalling,
            heartbeat_interval_s=heartbeat_interval_s,
            connect_timeout_s=connect_timeout_s,
            io_timeout_s=io_timeout_s,
            cache=cache,
            channel_factory=_factory,
        )
        result.outcomes.append(outcome)
        if outcome.status not in ("disconnected", "crashed"):
            break
        time.sleep(plan.reconnect_delay_s)
    result.executed = stalling.calls
    result.cache_hits = cache.hits
    return result


# ---------------------------------------------------------------------------
# Soak driver
# ---------------------------------------------------------------------------


#: Tight-but-valid timing for chaos runs: fast heartbeats so severed links
#: are detected in tenths of seconds, generous enough I/O timeouts that a
#: stalled-but-heartbeating worker survives.
CHAOS_TIMEOUTS = DistribTimeouts(
    wait_poll_s=0.05,
    heartbeat_interval_s=0.1,
    heartbeat_timeout_s=1.0,
    connect_timeout_s=5.0,
    io_timeout_s=15.0,
    linger_s=0.5,
)


def smoke_grid() -> SweepGrid:
    """The 8-cell smoke grid (same shape CI's dispatcher smoke uses)."""
    return SweepGrid(
        experiments=("section1_latency_budget", "section21_jitter_invariance"),
        scenarios=(bernoulli_scenario(0.02), gilbert_elliott_scenario(p_good_to_bad=0.05)),
        seeds=(0, 1),
    )


def load_stripped_records(results_dir: Path) -> dict[str, Any]:
    """Persisted records keyed by relative path, ``elapsed_s`` stripped.

    Wall time necessarily differs between runs; every other byte —
    including the path, which encodes experiment, scenario slug, seed and
    cache-key prefix — must match the fault-free baseline exactly.
    """
    out: dict[str, Any] = {}
    for path in sorted(Path(results_dir).glob("*/*.json")):
        record = json.loads(path.read_text(encoding="utf-8"))
        record.pop("elapsed_s", None)
        out[str(path.relative_to(results_dir))] = record
    return out


@dataclass
class PlanOutcome:
    """Convergence evidence for one plan (``violations`` empty = pass)."""

    plan: FaultPlan
    cells: int = 0
    dispatched: int = 0
    requeued: int = 0
    duplicates_dropped: int = 0
    fallback_cells: int = 0
    executed_by_workers: int = 0
    cache_reoffers: int = 0
    reconnects: int = 0
    elapsed_s: float = 0.0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_line(self) -> str:
        flag = "ok" if self.ok else "FAIL"
        return (
            f"plan {self.plan.name}: {flag} — {self.cells} cells, "
            f"dispatched={self.dispatched}, requeued={self.requeued}, "
            f"duplicates={self.duplicates_dropped}, fallback={self.fallback_cells}, "
            f"executed={self.executed_by_workers}, re-offered={self.cache_reoffers}, "
            f"reconnects={self.reconnects}, {self.elapsed_s:.1f}s"
            + ("" if self.ok else " — " + "; ".join(self.violations))
        )


def run_plan(
    plan: FaultPlan,
    grid: SweepGrid,
    baseline: Mapping[str, Any],
    results_dir: Path,
    workers: int = 2,
    startup_timeout_s: float = 3.0,
) -> PlanOutcome:
    """Run the grid under one fault plan and check every invariant.

    ``baseline`` is the fault-free results tree
    (:func:`load_stripped_records` of a local run of the same grid).
    ``results_dir`` must be fresh — the cache-hit re-run check depends on
    exactly this plan's records being there.
    """
    outcome = PlanOutcome(plan=plan)
    thread_floor = threading.active_count()
    started = wallclock.perf_counter()

    # The requeue budget must outlast the worst case the plan can inflict —
    # every attempt of every worker dying mid-cell — or cells resolve to
    # WorkerLost error records and break byte-identity.  Convergence then
    # rests on the local fallback, not on luck.
    max_requeues = workers * (plan.max_reconnects + 1) + 5
    backend = DistributedBackend(
        listen=("127.0.0.1", 0),
        timeouts=CHAOS_TIMEOUTS,
        max_requeues=max_requeues,
        startup_timeout_s=startup_timeout_s,
        local_fallback=True,
        fallback_processes=1,
    )
    fleet: list[ChaosWorkerResult] = []
    threads = []

    def _fleet_member(index: int) -> None:
        # Hold the fleet back until the sweep's cells are registered: the
        # chaos schedule should fault the *work*, not however many idle
        # wait/poll round-trips the grid's cache resolution happened to
        # take (which would make the fault point depend on disk speed).
        deadline = wallclock.monotonic() + 10.0
        while not backend.coordinator.submitted and wallclock.monotonic() < deadline:
            time.sleep(0.005)
        fleet.append(run_chaos_worker(backend.address, plan, worker_index=index))

    for index in range(workers):
        thread = threading.Thread(
            target=_fleet_member, args=(index,), name=f"chaos-worker-{index}", daemon=True
        )
        threads.append(thread)
        thread.start()
    try:
        report = SweepRunner(results_dir=results_dir, backend=backend).run(grid)
    finally:
        for thread in threads:
            thread.join(timeout=30)
    outcome.elapsed_s = wallclock.perf_counter() - started

    stats = backend.stats
    outcome.cells = len(report.cells)
    outcome.dispatched = stats.dispatched
    outcome.requeued = stats.requeued
    outcome.duplicates_dropped = stats.duplicates_dropped
    outcome.fallback_cells = stats.fallback_cells
    outcome.executed_by_workers = sum(result.executed for result in fleet)
    outcome.cache_reoffers = sum(result.cache_hits for result in fleet)
    outcome.reconnects = sum(max(0, result.attempts - 1) for result in fleet)

    # Invariant 1: every cell resolved exactly once.
    if len(report.cells) != grid.cell_count:
        outcome.violations.append(
            f"{len(report.cells)} cells resolved, expected {grid.cell_count}"
        )
    keys = [cell.cache_key for cell in report.cells]
    if len(set(keys)) != len(keys):
        outcome.violations.append("a cell resolved more than once")
    if report.failed_cells:
        outcome.violations.append(
            f"{len(report.failed_cells)} cell(s) resolved to error records"
        )

    # Invariant 2: the persisted tree is byte-identical to the fault-free
    # baseline (modulo wall time) — chaos may reorder and retry work but
    # must never change a result.
    records = load_stripped_records(results_dir)
    if records != dict(baseline):
        missing = sorted(set(baseline) - set(records))
        extra = sorted(set(records) - set(baseline))
        differing = sorted(
            path for path in set(records) & set(baseline) if records[path] != baseline[path]
        )
        outcome.violations.append(
            f"results differ from fault-free baseline "
            f"(missing={missing}, extra={extra}, differing={differing})"
        )

    # Invariant 3: accounting closes — worker executions plus fallback
    # executions cover every dispatch-completed cell, with re-offers (not
    # recomputes) making up the difference.
    if outcome.executed_by_workers + outcome.cache_reoffers + outcome.fallback_cells < grid.cell_count:
        outcome.violations.append(
            f"accounting gap: {outcome.executed_by_workers} executed + "
            f"{outcome.cache_reoffers} re-offered + {outcome.fallback_cells} fallback "
            f"< {grid.cell_count} cells"
        )

    # Invariant 4: a re-run over the same results dir is served entirely
    # from cache — chaos left a complete, loadable tree behind.
    rerun = SweepRunner(results_dir=results_dir, processes=1).run(grid)
    if rerun.executed != 0 or rerun.cached != grid.cell_count:
        outcome.violations.append(
            f"re-run not fully cached ({rerun.executed} executed, {rerun.cached} cached)"
        )

    # Invariant 5: no thread leaks — the fleet, the coordinator's accept
    # loop and every connection thread wind down.
    deadline = wallclock.monotonic() + 10.0
    while threading.active_count() > thread_floor and wallclock.monotonic() < deadline:
        time.sleep(0.05)
    if threading.active_count() > thread_floor:
        leaked = [
            thread.name
            for thread in threading.enumerate()
            if thread is not threading.main_thread()
        ]
        outcome.violations.append(f"thread leak: {threading.active_count()} alive ({leaked})")

    return outcome


def run_soak(
    plans: list[FaultPlan],
    results_root: Path,
    workers: int = 2,
    grid: Optional[SweepGrid] = None,
    echo: Callable[[str], None] = print,
) -> list[PlanOutcome]:
    """Run every plan against a shared fault-free baseline; returns outcomes.

    The across-plans re-offer invariant is appended to the *last* outcome's
    violations if no plan exercised the reconnect-and-re-offer path at all
    (a soak that never re-offered proved nothing about elasticity).
    """
    grid = grid or smoke_grid()
    baseline_dir = results_root / "baseline"
    echo(f"fault-free baseline: {grid.cell_count} cells -> {baseline_dir}")
    baseline_report = SweepRunner(results_dir=baseline_dir, processes=1).run(grid)
    if baseline_report.failed_cells:
        raise RuntimeError("fault-free baseline failed; cannot judge chaos runs")
    baseline = load_stripped_records(baseline_dir)

    outcomes = []
    for index, plan in enumerate(plans):
        plan_dir = results_root / f"plan-{index:03d}-{plan.name}"
        outcome = run_plan(plan, grid, baseline, plan_dir, workers=workers)
        outcomes.append(outcome)
        echo(outcome.summary_line())
    if outcomes and not any(outcome.cache_reoffers for outcome in outcomes):
        outcomes[-1].violations.append(
            "no plan in the soak produced a cache re-offer; elasticity untested"
        )
    return outcomes


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos soak for the distributed dispatcher: run the smoke "
        "grid under seeded fault plans and assert convergence invariants."
    )
    parser.add_argument(
        "--plans", type=int, default=0, metavar="N", help="number of sampled fault plans"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --plans sampling (plans are derived)"
    )
    parser.add_argument(
        "--preset",
        action="append",
        default=[],
        choices=sorted(PRESET_PLANS),
        help="also run this named preset plan (repeatable)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="chaos workers per plan (default 2)"
    )
    parser.add_argument(
        "--results",
        default=None,
        metavar="DIR",
        help="results root (default: a temporary directory, removed on success)",
    )
    parser.add_argument(
        "--show-plan",
        action="store_true",
        help="print each plan's JSON spec before running it",
    )
    args = parser.parse_args(argv)

    plans = [PRESET_PLANS[name] for name in args.preset]
    plans += sample_plans(args.plans, args.seed)
    if not plans:
        parser.error("nothing to run: give --plans N and/or --preset NAME")

    if args.results is not None:
        results_root = Path(args.results)
        results_root.mkdir(parents=True, exist_ok=True)
        ephemeral = False
    else:
        results_root = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        ephemeral = True

    if args.show_plan:
        for plan in plans:
            print(json.dumps(plan.to_jsonable(), sort_keys=True))

    outcomes = run_soak(plans, results_root, workers=args.workers)
    failed = [outcome for outcome in outcomes if not outcome.ok]
    reoffers = sum(outcome.cache_reoffers for outcome in outcomes)
    reconnects = sum(outcome.reconnects for outcome in outcomes)
    print(
        f"chaos soak: {len(outcomes) - len(failed)}/{len(outcomes)} plans converged, "
        f"{reconnects} reconnects, {reoffers} cells re-offered from worker caches"
    )
    if failed:
        print(f"results kept at {results_root}")
        return 1
    if ephemeral:
        shutil.rmtree(results_root, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
