"""Length-prefixed JSON message framing for the distributed dispatcher.

Every message on the wire is a 4-byte big-endian length followed by that
many bytes of UTF-8 JSON encoding one object with at least a ``"type"``
key.  The framing is symmetric — either side may speak first — so the same
session logic runs whether the coordinator accepted the worker's connection
or dialed out to a persistent worker agent.

Message vocabulary (all extra keys are ignored by the receiver, so the
protocol can grow backwards-compatibly):

=================  =========  =================================================
type               direction  fields
=================  =========  =================================================
``hello``          both       ``role`` (``"coordinator"``/``"worker"``),
                              ``protocol`` (int), ``fingerprint`` (repro source
                              tree hash), ``worker`` (worker name, worker side)
``welcome``        coord →    handshake accepted
``reject``         both       ``reason`` — handshake refused, connection closes
``next``           → coord    the worker is idle and wants a cell
``task``           coord →    ``task_id``, ``payload`` (a sweep cell payload)
``wait``           coord →    ``seconds`` — nothing runnable right now, poll
                              again after the delay
``done``           coord →    the sweep is complete; the worker may disconnect
``result``         → coord    ``task_id``, ``record`` (result *or* error record)
``heartbeat``      → coord    liveness while executing; carries nothing
``bye``            → coord    graceful disconnect (e.g. ``--max-cells`` reached)
``status``         coord →    one :data:`STATUS_SCHEMA` fleet snapshot (queue
                              depth, per-worker counters, fault classes),
                              streamed to attached monitors
                              (``python -m repro.distrib.monitor``)
=================  =========  =================================================

Peers are either ``worker`` s (execute cells) or ``monitor`` s (read-only
observers of the ``status`` stream); the role rides in the ``hello``.

The coordinator treats *any* received message as proof of liveness; a
worker that stays silent longer than the heartbeat timeout is presumed
dead and its in-flight cells are requeued.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Optional

#: Bumped whenever the message vocabulary changes incompatibly; both sides
#: refuse to pair with a different version during the handshake.
PROTOCOL_VERSION = 1

#: The complete wire vocabulary.  ``reprolint``'s protocol-exhaustiveness
#: rule cross-checks this set against every ``channel.send("<type>", ...)``
#: site and every dispatch branch in ``coordinator.py``/``worker.py``, so a
#: new message type cannot ship sent-but-unhandled (silently dropped by the
#: receiver) or handled-but-never-sent (dead protocol surface).  Receivers
#: still ignore *incoming* unknown types for forward compatibility; this
#: set only constrains what this codebase emits.
MESSAGE_TYPES = frozenset(
    {
        "hello",
        "welcome",
        "reject",
        "next",
        "task",
        "wait",
        "done",
        "result",
        "heartbeat",
        "bye",
        "status",
    }
)

#: Schema identifier carried by every ``status`` payload (and every line of
#: a ``--status-json`` stream).  Bump when the snapshot shape changes; the
#: monitor refuses frames it does not understand instead of mis-rendering
#: them.  Field reference: docs/OBSERVABILITY.md.
STATUS_SCHEMA = "repro-status-v1"

_HEADER = struct.Struct(">I")

#: Upper bound on one frame.  Sweep cell records are a few KB to a few MB;
#: anything larger is a corrupt frame or a foreign client.  The length
#: prefix is attacker/corruption-controlled input: without this bound a
#: single hostile header would make ``recv`` allocate up to 4 GiB.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Never read more than this per ``recv`` call, however large the frame:
#: allocation then grows with data actually received, not with what a
#: corrupt length prefix merely *claims* is coming.
_RECV_CHUNK_BYTES = 1 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A peer sent bytes that do not parse as a protocol message."""


class FrameTooLargeError(ProtocolError):
    """A frame (announced or outgoing) exceeds the configured size bound."""


def encode_message(message: dict, max_bytes: int = MAX_MESSAGE_BYTES) -> bytes:
    body = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameTooLargeError(
            f"outgoing message of {len(body)} bytes exceeds the {max_bytes}-byte frame limit"
        )
    return _HEADER.pack(len(body)) + body


def send_message(sock: socket.socket, message: dict, max_bytes: int = MAX_MESSAGE_BYTES) -> None:
    """Write one framed message (callers serialise concurrent senders)."""
    sock.sendall(encode_message(message, max_bytes=max_bytes))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on a clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, _RECV_CHUNK_BYTES))
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket, max_bytes: int = MAX_MESSAGE_BYTES) -> Optional[dict]:
    """Read one framed message; None when the peer closed the connection.

    ``max_bytes`` bounds the announced frame length *before* any body byte
    is read: a hostile or bit-flipped length prefix raises a typed
    :class:`FrameTooLargeError` instead of asking the allocator for
    whatever the header claims.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLargeError(
            f"peer announced a {length}-byte frame (limit {max_bytes})"
        )
    body = _recv_exact(sock, length) if length else b""
    if length and body is None:  # pragma: no cover - _recv_exact raises instead
        raise ProtocolError("connection closed mid-frame")
    try:
        message = json.loads(body.decode("utf-8")) if length else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not a typed message object")
    return message


class MessageChannel:
    """Thread-safe framed messaging over one connected socket.

    Sending is serialised with a lock because a worker writes from two
    threads (the session loop and the heartbeat thread); receiving is only
    ever done from one thread per side, so it takes no lock.

    ``max_message_bytes`` bounds frames in both directions (default
    :data:`MAX_MESSAGE_BYTES`); subclasses — the chaos layer's
    :class:`~repro.distrib.chaos.ChaosChannel` — override ``_send_locked``
    / ``recv`` to intercept the message stream at this exact boundary.
    """

    def __init__(
        self, sock: socket.socket, max_message_bytes: int = MAX_MESSAGE_BYTES
    ) -> None:
        self.sock = sock
        self.max_message_bytes = max_message_bytes
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, type: str, **fields: Any) -> None:
        if type not in MESSAGE_TYPES:
            raise ProtocolError(f"unknown outgoing message type {type!r}")
        message = {"type": type, **fields}
        with self._send_lock:
            self._send_locked(message)

    def _send_locked(self, message: dict) -> None:
        """Write one validated message while holding the send lock."""
        send_message(self.sock, message, max_bytes=self.max_message_bytes)

    def recv(self) -> Optional[dict]:
        return recv_message(self.sock, max_bytes=self.max_message_bytes)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def parse_address(text: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) into an address tuple."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = default_host, text
    host = host or default_host
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"invalid address {text!r}: expected HOST:PORT") from exc
