"""Worker agent: pulls sweep cells from a coordinator and executes them.

Run one per machine (or per core) against a coordinator started by
``examples/sweep_scenarios.py --serve`` or a
:class:`~repro.distrib.backend.DistributedBackend`::

    python -m repro.distrib.worker --connect HOST:PORT

or as a persistent agent the coordinator dials out to (``--workers``)::

    python -m repro.distrib.worker --listen PORT

Before accepting any work the worker verifies the coordinator's package
fingerprint against its own source tree: sweep cache keys fold in that
fingerprint, so a worker running different code would poison the results
directory with records computed by a different simulator.  Cells execute
through the existing fault-isolated cell machinery
(:func:`repro.analysis.sweeps.execute_cell_record`), so a raising runner
returns an error record rather than killing the worker; a heartbeat thread
keeps the connection visibly alive during long cells.

Elasticity: sessions can share a :class:`WorkerCellCache`, so a worker that
reconnects after a partition or preemption *re-offers* the records it
already computed instead of redoing the work — the coordinator requeued
those cells when the worker vanished, and the re-offer resolves them at the
cost of one message each (``--reconnect`` wires this up on the CLI; the
chaos harness leans on it heavily).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..analysis.sweeps import _package_fingerprint, execute_cell_record
from ..core import wallclock
from .config import DEFAULT_RETRY, DEFAULT_TIMEOUTS, RetryPolicy, backoff_seed
from .protocol import PROTOCOL_VERSION, MessageChannel, ProtocolError, parse_address


@dataclass
class WorkerCellCache:
    """Completed cells this worker can re-offer after a reconnect.

    Keyed by the cell's content-hash ``cache_key`` (same key the on-disk
    sweep cache uses), so a cell requeued under a different ``task_id``
    still hits.  Error records are never cached — a retry after a transient
    fault should re-execute, exactly like the on-disk cache refuses to
    load error records.
    """

    records: dict[str, dict] = field(default_factory=dict)
    #: Cells answered from the cache (re-offers) vs. freshly executed.
    hits: int = 0
    stores: int = 0

    def get(self, payload: dict) -> Optional[dict]:
        record = self.records.get(payload.get("cache_key"))
        if record is not None:
            self.hits += 1
        return record

    def put(self, payload: dict, record: dict) -> None:
        if record.get("error") is not None:
            return
        key = payload.get("cache_key")
        if isinstance(key, str):
            self.records[key] = record
            self.stores += 1


@dataclass
class WorkerOutcome:
    """How one worker session ended.

    ``status`` is one of ``done`` (coordinator said the sweep is complete,
    or ``max_cells`` was reached), ``disconnected`` (the coordinator went
    away — normal when it tears down after the sweep), ``rejected``
    (coordinator refused the handshake), ``fingerprint_mismatch`` (the
    worker refused the coordinator's tree), ``crashed`` (the executor
    itself raised — the connection is dropped so the cell is requeued
    elsewhere) or ``connect_failed``.
    """

    status: str
    completed: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("done", "disconnected")


def _default_worker_name() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def _run_session(
    channel: MessageChannel,
    fingerprint: str,
    worker_name: str,
    executor: Callable[[dict], dict],
    heartbeat_interval_s: float,
    max_cells: Optional[int],
    cache: Optional[WorkerCellCache] = None,
) -> WorkerOutcome:
    """Drive one coordinator connection from handshake to completion."""
    hello = channel.recv()
    if (
        hello is None
        or hello.get("type") != "hello"
        or hello.get("role") != "coordinator"
    ):
        return WorkerOutcome("disconnected", detail="no coordinator hello")
    if hello.get("protocol") != PROTOCOL_VERSION:
        channel.send(
            "reject",
            reason=f"protocol version mismatch ({hello.get('protocol')} != {PROTOCOL_VERSION})",
        )
        return WorkerOutcome("rejected", detail="protocol version mismatch")
    if hello.get("fingerprint") != fingerprint:
        channel.send(
            "reject",
            reason="package fingerprint mismatch: this worker runs a different repro tree",
        )
        return WorkerOutcome(
            "fingerprint_mismatch",
            detail="coordinator's repro source tree differs from this worker's",
        )
    channel.send(
        "hello",
        role="worker",
        protocol=PROTOCOL_VERSION,
        fingerprint=fingerprint,
        worker=worker_name,
    )
    reply = channel.recv()
    if reply is None:
        return WorkerOutcome("disconnected", detail="coordinator closed during handshake")
    if reply.get("type") == "reject":
        return WorkerOutcome("rejected", detail=str(reply.get("reason", "")))
    if reply.get("type") != "welcome":
        return WorkerOutcome("disconnected", detail=f"unexpected reply {reply.get('type')!r}")

    stop_heartbeat = threading.Event()

    def _heartbeat() -> None:
        while not stop_heartbeat.wait(heartbeat_interval_s):
            try:
                channel.send("heartbeat")
            except OSError:
                return

    threading.Thread(target=_heartbeat, name="distrib-heartbeat", daemon=True).start()
    completed = 0
    try:
        while True:
            channel.send("next")
            message = channel.recv()
            if message is None:
                return WorkerOutcome("disconnected", completed, "coordinator went away")
            kind = message.get("type")
            if kind == "done":
                return WorkerOutcome("done", completed)
            if kind == "wait":
                time.sleep(float(message.get("seconds", 0.2)))
                continue
            if kind != "task":
                continue  # unknown messages are ignored (forward compatibility)
            payload = message["payload"]
            record = cache.get(payload) if cache is not None else None
            if record is None:
                try:
                    record = executor(payload)
                except Exception as exc:  # reprolint: disable=broad-except
                    # Deliberately broad: the executor is already fault-isolated,
                    # so anything escaping it means this worker cannot report a
                    # record at all — drop the connection and let the coordinator
                    # requeue the cell on a healthy worker.
                    return WorkerOutcome("crashed", completed, f"{type(exc).__name__}: {exc}")
                if cache is not None:
                    cache.put(payload, record)
            channel.send("result", task_id=message["task_id"], record=record)
            completed += 1
            if max_cells is not None and completed >= max_cells:
                channel.send("bye")
                return WorkerOutcome("done", completed, f"max_cells={max_cells} reached")
    except (OSError, ProtocolError, TimeoutError) as exc:
        return WorkerOutcome("disconnected", completed, f"{type(exc).__name__}: {exc}")
    finally:
        stop_heartbeat.set()


def run_worker(
    connect: Optional[tuple[str, int]] = None,
    listen: Optional[tuple[str, int]] = None,
    fingerprint: Optional[str] = None,
    worker_name: Optional[str] = None,
    executor: Optional[Callable[[dict], dict]] = None,
    heartbeat_interval_s: float = DEFAULT_TIMEOUTS.heartbeat_interval_s,
    connect_timeout_s: float = DEFAULT_TIMEOUTS.connect_timeout_s,
    io_timeout_s: float = DEFAULT_TIMEOUTS.io_timeout_s,
    max_cells: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    cache: Optional[WorkerCellCache] = None,
    channel_factory: Optional[Callable[[socket.socket], MessageChannel]] = None,
) -> WorkerOutcome:
    """Run one worker session (the in-process entry point; the CLI wraps it).

    Exactly one of ``connect`` (dial the coordinator, retrying with the
    ``retry`` policy's jittered exponential backoff until
    ``connect_timeout_s``) or ``listen`` (accept a single coordinator
    connection, e.g. from a dial-out ``DistributedBackend``) must be given.
    ``fingerprint`` and ``executor`` exist for tests; they default to the
    real source-tree fingerprint and the fault-isolated cell executor.

    The timing kwargs default to :data:`~repro.distrib.config.
    DEFAULT_TIMEOUTS` but are accepted individually (not as a validated
    ``DistribTimeouts``) on purpose: tests simulate misbehaving workers —
    e.g. one that heartbeats slower than the coordinator's patience — which
    the validated config would rightly refuse to construct.

    ``cache`` makes sessions elastic: pass the same :class:`WorkerCellCache`
    across reconnects and finished cells are re-offered, not recomputed.
    ``channel_factory`` wraps the connected socket (default
    :class:`MessageChannel`); the chaos harness injects its fault layer here.
    """
    if (connect is None) == (listen is None):
        raise ValueError("exactly one of connect= or listen= is required")
    fingerprint = fingerprint if fingerprint is not None else _package_fingerprint()
    worker_name = worker_name or _default_worker_name()
    executor = executor or execute_cell_record
    retry = retry if retry is not None else DEFAULT_RETRY

    if connect is not None:
        backoff_rng = np.random.default_rng(backoff_seed(worker_name))
        deadline = wallclock.monotonic() + connect_timeout_s
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(connect, timeout=2.0)
                break
            except OSError as exc:
                if wallclock.monotonic() >= deadline:
                    return WorkerOutcome(
                        "connect_failed", detail=f"{connect[0]}:{connect[1]}: {exc}"
                    )
                time.sleep(retry.delay_s(attempt, backoff_rng))
                attempt += 1
    else:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind(listen)
            server.listen(1)
            server.settimeout(connect_timeout_s)
            try:
                sock, _ = server.accept()
            except (TimeoutError, socket.timeout):
                return WorkerOutcome("connect_failed", detail="no coordinator dialed in")
        finally:
            server.close()

    sock.settimeout(io_timeout_s)
    channel = channel_factory(sock) if channel_factory is not None else MessageChannel(sock)
    try:
        return _run_session(
            channel,
            fingerprint,
            worker_name,
            executor,
            heartbeat_interval_s,
            max_cells,
            cache=cache,
        )
    except (OSError, ProtocolError, TimeoutError) as exc:
        # The session loop handles its own I/O errors; this catches the
        # coordinator vanishing *mid-handshake* (e.g. it aborted before the
        # sweep started), which must read as a disconnect, not a crash.
        return WorkerOutcome("disconnected", detail=f"{type(exc).__name__}: {exc}")
    finally:
        channel.close()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep worker agent: pulls cells from a coordinator and executes them."
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="dial a coordinator (examples/sweep_scenarios.py --serve)",
    )
    mode.add_argument(
        "--listen",
        metavar="[HOST:]PORT",
        help="run as a persistent agent; coordinators dial in (--workers)",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, help="disconnect after this many cells"
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=DEFAULT_TIMEOUTS.connect_timeout_s,
        help="seconds to keep retrying the initial connect (or awaiting a dial-in)",
    )
    parser.add_argument(
        "--io-timeout",
        type=float,
        default=DEFAULT_TIMEOUTS.io_timeout_s,
        help="socket receive timeout for coordinator responses",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_TIMEOUTS.heartbeat_interval_s,
        help="heartbeat interval in seconds",
    )
    parser.add_argument("--name", default=None, help="worker name shown to the coordinator")
    parser.add_argument(
        "--reconnect",
        type=int,
        default=0,
        metavar="N",
        help="with --connect: on disconnect/crash, redial up to N times, "
        "re-offering already-completed cells from the in-memory cache",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="with --listen: exit after serving one coordinator instead of looping",
    )
    args = parser.parse_args(argv)

    common = dict(
        worker_name=args.name,
        heartbeat_interval_s=args.heartbeat,
        connect_timeout_s=args.connect_timeout,
        io_timeout_s=args.io_timeout,
        max_cells=args.max_cells,
    )

    def _report(outcome: WorkerOutcome) -> None:
        print(
            f"worker {outcome.status}: {outcome.completed} cells"
            + (f" ({outcome.detail})" if outcome.detail else "")
        )

    if args.connect is not None:
        address = parse_address(args.connect)
        cache = WorkerCellCache()
        redials = 0
        while True:
            outcome = run_worker(connect=address, cache=cache, **common)
            _report(outcome)
            # Reconnect only on involuntary endings; "done"/"rejected" are
            # final, and connect_failed means the coordinator never existed.
            if outcome.status not in ("disconnected", "crashed") or redials >= args.reconnect:
                return 0 if outcome.ok else 2
            redials += 1
            if cache.hits or cache.stores:
                print(
                    f"worker reconnecting ({redials}/{args.reconnect}) with "
                    f"{len(cache.records)} cached cell(s) to re-offer"
                )

    # A persistent agent must be reachable from other machines, so the bare
    # ``--listen PORT`` form binds every interface (unlike --connect, where
    # a bare port means the local coordinator).
    address = parse_address(args.listen, default_host="0.0.0.0")
    while True:
        outcome = run_worker(listen=address, **common)
        _report(outcome)
        if args.once:
            return 0 if outcome.ok else 2


if __name__ == "__main__":
    sys.exit(main())
