"""Video substrate: frames, synthetic scenes, block codec, rate control, GOP.

This subpackage supplies everything the paper's experiments need from a
video pipeline: a frame/source abstraction, a synthetic scene generator with
semantic ground truth (standing in for the real video corpus), a block-DCT
codec with per-block QP control (standing in for Kvazaar/x265), trial-and-
error rate control, a GOP structure, quality metrics, and transcoding.
"""

from .codec import (
    MAX_QP,
    MIN_QP,
    BlockCodec,
    CodecConfig,
    EncodedFrame,
    average_bitrate_bps,
    encode_video,
)
from .frames import (
    ArrayVideoSource,
    SyntheticNoiseSource,
    VideoFrame,
    VideoSource,
    downsample_frame,
)
from .gop import GopConfig, GopDecoder, GopEncoder
from .quality import (
    RegionQualityReport,
    high_frequency_retention,
    mse,
    psnr,
    region_psnr,
    region_quality,
    ssim,
)
from .rate_control import (
    RateControlResult,
    achieved_bitrate_bps,
    encode_at_target_bitrate,
    encode_sequence_at_target_bitrate,
)
from .scene import (
    CATEGORIES,
    CATEGORY_ACTION,
    CATEGORY_ATTRIBUTE,
    CATEGORY_COUNTING,
    CATEGORY_OBJECT,
    CATEGORY_SPATIAL,
    CATEGORY_TEXT_RICH,
    PAPER_CATEGORY_DISTRIBUTION,
    PAPER_MULTI_FRAME_FRACTION,
    SCENE_BUILDERS,
    Scene,
    SceneFact,
    SceneObject,
    SceneVideoSource,
    build_scene_corpus,
    make_kitchen_scene,
    make_lecture_scene,
    make_park_scene,
    make_sports_scene,
    make_street_scene,
)
from .transcode import TranscodeResult, concatenate_side_by_side, transcode_to_bitrate

__all__ = [
    "ArrayVideoSource",
    "BlockCodec",
    "CATEGORIES",
    "CATEGORY_ACTION",
    "CATEGORY_ATTRIBUTE",
    "CATEGORY_COUNTING",
    "CATEGORY_OBJECT",
    "CATEGORY_SPATIAL",
    "CATEGORY_TEXT_RICH",
    "CodecConfig",
    "EncodedFrame",
    "GopConfig",
    "GopDecoder",
    "GopEncoder",
    "MAX_QP",
    "MIN_QP",
    "PAPER_CATEGORY_DISTRIBUTION",
    "PAPER_MULTI_FRAME_FRACTION",
    "RateControlResult",
    "RegionQualityReport",
    "SCENE_BUILDERS",
    "Scene",
    "SceneFact",
    "SceneObject",
    "SceneVideoSource",
    "SyntheticNoiseSource",
    "TranscodeResult",
    "VideoFrame",
    "VideoSource",
    "achieved_bitrate_bps",
    "average_bitrate_bps",
    "build_scene_corpus",
    "concatenate_side_by_side",
    "downsample_frame",
    "encode_at_target_bitrate",
    "encode_sequence_at_target_bitrate",
    "encode_video",
    "high_frequency_retention",
    "make_kitchen_scene",
    "make_lecture_scene",
    "make_park_scene",
    "make_sports_scene",
    "make_street_scene",
    "mse",
    "psnr",
    "region_psnr",
    "region_quality",
    "ssim",
    "transcode_to_bitrate",
]
