"""Synthetic scenes with semantic ground truth.

The paper's experiments need video whose *fine* content (scoreboard digits,
jersey logos, spectator counts, ear shapes) is destroyed by aggressive
quantisation while its *coarse* content (who is in the frame, what they are
doing) survives — that is exactly what makes QA samples video-quality
sensitive (Section 2.3) and what context-aware bit allocation exploits
(Section 3.2).

A :class:`Scene` is a set of :class:`SceneObject` regions rendered onto a
background.  Each object carries semantic ``concepts`` (consumed by the
CLIP-style encoder) and a ``detail_scale`` controlling the spatial frequency
of its texture: high-detail objects lose their information first as QP
rises.  :class:`SceneFact` records the ground-truth answers that questions
can ask about, together with the visual granularity needed to answer them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from .frames import VideoFrame, VideoSource

# QA categories used by DeViBench (Figure 8 of the paper).
CATEGORY_TEXT_RICH = "text_rich"
CATEGORY_ACTION = "action"
CATEGORY_ATTRIBUTE = "attribute"
CATEGORY_COUNTING = "counting"
CATEGORY_OBJECT = "object"
CATEGORY_SPATIAL = "spatial"

CATEGORIES = (
    CATEGORY_TEXT_RICH,
    CATEGORY_ACTION,
    CATEGORY_ATTRIBUTE,
    CATEGORY_COUNTING,
    CATEGORY_OBJECT,
    CATEGORY_SPATIAL,
)

#: The category mix the paper reports for DeViBench (Figure 8).
PAPER_CATEGORY_DISTRIBUTION = {
    CATEGORY_TEXT_RICH: 0.5484,
    CATEGORY_ACTION: 0.1703,
    CATEGORY_ATTRIBUTE: 0.1443,
    CATEGORY_COUNTING: 0.06,
    CATEGORY_OBJECT: 0.059,
    CATEGORY_SPATIAL: 0.018,
}

#: Fraction of DeViBench questions that need multiple frames (Figure 8).
PAPER_MULTI_FRAME_FRACTION = 0.3445


@dataclass(frozen=True)
class SceneFact:
    """One ground-truth fact about a scene that a question can target."""

    object_name: str
    key: str
    value: str
    domain: tuple[str, ...]
    category: str
    detail_scale: float
    question: str
    multi_frame: bool = False
    query_concepts: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        if not 0.0 <= self.detail_scale <= 1.0:
            raise ValueError("detail_scale must be in [0, 1]")
        if self.value not in self.domain:
            raise ValueError(f"value {self.value!r} must appear in its domain {self.domain}")
        if len(set(self.domain)) < 2:
            raise ValueError("domain must contain at least two distinct options")


@dataclass
class SceneObject:
    """A rectangular semantic region of the scene."""

    name: str
    concepts: tuple[str, ...]
    bbox: tuple[float, float, float, float]
    detail_scale: float = 0.5
    base_intensity: float = 128.0
    texture_contrast: float = 45.0
    velocity: tuple[float, float] = (0.0, 0.0)
    texture_seed: int = 0

    def __post_init__(self) -> None:
        x, y, w, h = self.bbox
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ValueError(f"bbox origin must lie in [0,1]^2, got {self.bbox}")
        if w <= 0 or h <= 0 or x + w > 1.0001 or y + h > 1.0001:
            raise ValueError(f"bbox must fit inside the frame, got {self.bbox}")
        if not 0.0 <= self.detail_scale <= 1.0:
            raise ValueError("detail_scale must be in [0, 1]")

    def bbox_at(self, time_s: float) -> tuple[float, float, float, float]:
        """Bounding box at a given time, clamped to stay inside the frame."""
        x, y, w, h = self.bbox
        x = float(np.clip(x + self.velocity[0] * time_s, 0.0, 1.0 - w))
        y = float(np.clip(y + self.velocity[1] * time_s, 0.0, 1.0 - h))
        return (x, y, w, h)

    def pixel_region(self, height: int, width: int, time_s: float = 0.0) -> tuple[int, int, int, int]:
        """(row0, row1, col0, col1) pixel slice of the object at ``time_s``."""
        x, y, w, h = self.bbox_at(time_s)
        col0 = int(round(x * width))
        row0 = int(round(y * height))
        col1 = min(width, max(col0 + 1, int(round((x + w) * width))))
        row1 = min(height, max(row0 + 1, int(round((y + h) * height))))
        return (row0, row1, col0, col1)


@dataclass
class Scene:
    """A synthetic scene: objects + facts + a deterministic renderer."""

    name: str
    description: str
    objects: list[SceneObject]
    facts: list[SceneFact]
    height: int = 360
    width: int = 640
    fps: float = 30.0
    duration_s: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ValueError("scene dimensions must be positive")
        names = [obj.name for obj in self.objects]
        if len(names) != len(set(names)):
            raise ValueError("object names must be unique within a scene")
        known = set(names)
        for fact in self.facts:
            if fact.object_name not in known:
                raise ValueError(f"fact references unknown object {fact.object_name!r}")

    # -- lookups ----------------------------------------------------------

    def object_by_name(self, name: str) -> SceneObject:
        for obj in self.objects:
            if obj.name == name:
                return obj
        raise KeyError(f"no object named {name!r} in scene {self.name!r}")

    def facts_by_category(self, category: str) -> list[SceneFact]:
        return [fact for fact in self.facts if fact.category == category]

    @property
    def frame_count(self) -> int:
        return max(1, int(round(self.duration_s * self.fps)))

    # -- rendering ---------------------------------------------------------

    def _background(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        yy, xx = np.mgrid[0 : self.height, 0 : self.width]
        gradient = 70 + 60 * (xx / max(self.width - 1, 1)) + 25 * (yy / max(self.height - 1, 1))
        # A smooth low-frequency undulation so the background is not trivially flat.
        phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
        undulation = 10 * np.sin(2 * np.pi * xx / self.width + phase_x) * np.cos(
            2 * np.pi * yy / self.height + phase_y
        )
        return gradient + undulation

    def _object_texture(self, obj: SceneObject, rows: int, cols: int, time_s: float) -> np.ndarray:
        """Texture whose spatial frequency grows with the object's detail scale."""
        rng = np.random.default_rng(self.seed * 1009 + obj.texture_seed)
        yy, xx = np.mgrid[0:rows, 0:cols]
        # Fine detail => high spatial frequency => first casualty of coarse QP.
        cycles = 1.0 + obj.detail_scale * 14.0
        phase = rng.uniform(0, 2 * np.pi)
        pattern = np.sin(2 * np.pi * cycles * xx / max(cols, 1) + phase)
        pattern += np.sin(2 * np.pi * cycles * yy / max(rows, 1) + phase * 0.7)
        # A static pseudo-random component representing textual / structural detail.
        static = rng.normal(0, 1.0, size=(rows, cols))
        blend = 0.35 + 0.65 * obj.detail_scale
        texture = (1 - blend) * pattern / 2.0 + blend * static
        return obj.base_intensity + obj.texture_contrast * texture

    def render(self, frame_index: int) -> np.ndarray:
        """Render one frame as a luma array in [0, 255]."""
        if not 0 <= frame_index < self.frame_count:
            raise IndexError(f"frame index {frame_index} out of range [0, {self.frame_count})")
        time_s = frame_index / self.fps
        frame = self._background().copy()
        for obj in self.objects:
            row0, row1, col0, col1 = obj.pixel_region(self.height, self.width, time_s)
            texture = self._object_texture(obj, row1 - row0, col1 - col0, time_s)
            frame[row0:row1, col0:col1] = texture
        return np.clip(frame, 0, 255)

    def to_source(self) -> "SceneVideoSource":
        return SceneVideoSource(self)


class SceneVideoSource(VideoSource):
    """Adapts a :class:`Scene` to the :class:`VideoSource` interface."""

    def __init__(self, scene: Scene) -> None:
        self.scene = scene
        self.fps = scene.fps
        self.height = scene.height
        self.width = scene.width
        self._cache: dict[int, np.ndarray] = {}

    def frame_count(self) -> int:
        return self.scene.frame_count

    def frame_at(self, index: int) -> VideoFrame:
        if index not in self._cache:
            self._cache[index] = self.scene.render(index)
        return VideoFrame(
            frame_id=index,
            timestamp=index / self.fps,
            pixels=self._cache[index],
            metadata={"scene": self.scene.name},
        )


# ---------------------------------------------------------------------------
# Scene library
# ---------------------------------------------------------------------------


def make_sports_scene(seed: int = 0, height: int = 360, width: int = 640) -> Scene:
    """A basketball-game scene mirroring the paper's Figure 4 example."""
    rng = np.random.default_rng(seed)
    score = f"{rng.integers(0, 9)}-{rng.integers(0, 9)}"
    score_domain = tuple(sorted({score, "3-2", "1-4", "2-2", "5-0"}))
    logo = str(rng.choice(["swoosh", "stripes", "star", "wing"]))
    spectators = int(rng.integers(3, 9))
    action = str(rng.choice(["covering his mouth", "shooting", "dribbling", "defending"]))

    objects = [
        SceneObject(
            name="scoreboard",
            concepts=("scoreboard", "score", "text", "numbers", "game"),
            bbox=(0.72, 0.05, 0.24, 0.14),
            detail_scale=0.92,
            base_intensity=200.0,
            texture_contrast=55.0,
            texture_seed=1,
        ),
        SceneObject(
            name="player",
            concepts=("player", "person", "athlete", "action", "body"),
            bbox=(0.35, 0.30, 0.22, 0.55),
            detail_scale=0.25,
            base_intensity=150.0,
            velocity=(0.01, 0.0),
            texture_seed=2,
        ),
        SceneObject(
            name="jersey_logo",
            concepts=("logo", "jersey", "brand", "emblem"),
            bbox=(0.41, 0.42, 0.08, 0.10),
            detail_scale=0.88,
            base_intensity=90.0,
            texture_contrast=60.0,
            texture_seed=3,
        ),
        SceneObject(
            name="spectators",
            concepts=("spectators", "crowd", "people", "audience"),
            bbox=(0.02, 0.05, 0.55, 0.18),
            detail_scale=0.75,
            base_intensity=110.0,
            texture_seed=4,
        ),
        SceneObject(
            name="court",
            concepts=("court", "floor", "ground"),
            bbox=(0.0, 0.82, 1.0, 0.18),
            detail_scale=0.10,
            base_intensity=170.0,
            texture_contrast=15.0,
            texture_seed=5,
        ),
        SceneObject(
            name="player_hands",
            concepts=("hands", "player", "action", "gesture"),
            bbox=(0.44, 0.33, 0.07, 0.08),
            detail_scale=0.72,
            base_intensity=185.0,
            texture_contrast=55.0,
            velocity=(0.01, 0.0),
            texture_seed=6,
        ),
    ]
    hand_side = str(rng.choice(["left hand", "right hand"]))
    facts = [
        SceneFact(
            object_name="scoreboard",
            key="score",
            value=score,
            domain=score_domain,
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.9,
            question="Could you tell me the present score of the game?",
            query_concepts=("score", "scoreboard", "numbers"),
        ),
        SceneFact(
            object_name="jersey_logo",
            key="logo",
            value=logo,
            domain=("swoosh", "stripes", "star", "wing"),
            category=CATEGORY_ATTRIBUTE,
            detail_scale=0.85,
            question="What logo is seen on the jersey of the player covering his mouth?",
            query_concepts=("logo", "jersey", "brand"),
        ),
        SceneFact(
            object_name="spectators",
            key="count",
            value=str(spectators),
            domain=tuple(str(v) for v in range(3, 9)),
            category=CATEGORY_COUNTING,
            detail_scale=0.28,
            question="How many spectators can be seen?",
            query_concepts=("spectators", "crowd", "people"),
        ),
        SceneFact(
            object_name="player_hands",
            key="gesture_hand",
            value=hand_side,
            domain=("left hand", "right hand"),
            category=CATEGORY_ACTION,
            detail_scale=0.7,
            question="Which hand does the player use to cover his mouth during the clip?",
            multi_frame=True,
            query_concepts=("hands", "player", "action"),
        ),
        SceneFact(
            object_name="player",
            key="action",
            value=action,
            domain=("covering his mouth", "shooting", "dribbling", "defending"),
            category=CATEGORY_ACTION,
            detail_scale=0.15,
            question="What is the player doing?",
            multi_frame=True,
            query_concepts=("player", "action", "person"),
        ),
        SceneFact(
            object_name="player",
            key="present",
            value="yes",
            domain=("yes", "no"),
            category=CATEGORY_OBJECT,
            detail_scale=0.05,
            question="Is there a player visible in the video?",
            query_concepts=("player", "person"),
        ),
    ]
    return Scene(
        name=f"sports_{seed}",
        description="A basketball game with a scoreboard, a player, and spectators.",
        objects=objects,
        facts=facts,
        height=height,
        width=width,
        seed=seed,
    )


def make_park_scene(seed: int = 0, height: int = 360, width: int = 640) -> Scene:
    """A park scene mirroring the paper's Figure 5 examples (dog ears, grass/season)."""
    rng = np.random.default_rng(seed + 17)
    ear_type = str(rng.choice(["erect-eared", "floppy-eared"]))
    season = str(rng.choice(["spring", "summer", "autumn", "winter"]))
    dog_side = str(rng.choice(["left", "right"]))
    head_orientation = str(rng.choice(["toward the tree", "away from the tree"]))
    dog_x = 0.12 if dog_side == "left" else 0.62

    objects = [
        SceneObject(
            name="dog_head",
            concepts=("dog", "head", "ears", "animal", "pet"),
            bbox=(dog_x, 0.35, 0.14, 0.18),
            detail_scale=0.82,
            base_intensity=100.0,
            texture_contrast=50.0,
            texture_seed=11,
        ),
        SceneObject(
            name="dog_body",
            concepts=("dog", "animal", "pet", "body"),
            bbox=(dog_x, 0.53, 0.20, 0.25),
            detail_scale=0.35,
            base_intensity=105.0,
            texture_seed=12,
        ),
        SceneObject(
            name="grass",
            concepts=("grass", "lawn", "plants", "season", "nature"),
            bbox=(0.0, 0.70, 1.0, 0.30),
            detail_scale=0.55,
            base_intensity=140.0,
            texture_contrast=35.0,
            texture_seed=13,
        ),
        SceneObject(
            name="tree",
            concepts=("tree", "plants", "nature", "season"),
            bbox=(0.80, 0.10, 0.18, 0.60),
            detail_scale=0.45,
            base_intensity=95.0,
            texture_seed=14,
        ),
        SceneObject(
            name="sky",
            concepts=("sky", "background", "weather"),
            bbox=(0.0, 0.0, 1.0, 0.10),
            detail_scale=0.05,
            base_intensity=220.0,
            texture_contrast=8.0,
            texture_seed=15,
        ),
    ]
    facts = [
        SceneFact(
            object_name="dog_head",
            key="ear_type",
            value=ear_type,
            domain=("erect-eared", "floppy-eared"),
            category=CATEGORY_ATTRIBUTE,
            detail_scale=0.8,
            question="Is the dog in the video erect-eared or floppy-eared?",
            query_concepts=("dog", "ears", "head"),
        ),
        SceneFact(
            object_name="grass",
            key="season",
            value=season,
            domain=("spring", "summer", "autumn", "winter"),
            category=CATEGORY_ATTRIBUTE,
            detail_scale=0.5,
            question="Infer what season it might be in the video.",
            query_concepts=("season", "grass", "plants"),
        ),
        SceneFact(
            object_name="dog_body",
            key="position",
            value=dog_side,
            domain=("left", "right"),
            category=CATEGORY_SPATIAL,
            detail_scale=0.1,
            question="Is the dog on the left or the right side of the frame?",
            query_concepts=("dog", "position"),
        ),
        SceneFact(
            object_name="dog_head",
            key="head_orientation",
            value=head_orientation,
            domain=("toward the tree", "away from the tree"),
            category=CATEGORY_SPATIAL,
            detail_scale=0.62,
            question="Is the dog's head turned toward the tree or away from it?",
            query_concepts=("dog", "head", "tree", "position"),
        ),
        SceneFact(
            object_name="dog_body",
            key="present",
            value="yes",
            domain=("yes", "no"),
            category=CATEGORY_OBJECT,
            detail_scale=0.05,
            question="Is there a dog in the video?",
            query_concepts=("dog", "animal"),
        ),
        SceneFact(
            object_name="dog_body",
            key="action",
            value="walking",
            domain=("walking", "sleeping", "jumping", "eating"),
            category=CATEGORY_ACTION,
            detail_scale=0.2,
            question="What is the dog doing across the video?",
            multi_frame=True,
            query_concepts=("dog", "action"),
        ),
    ]
    return Scene(
        name=f"park_{seed}",
        description="A dog walking in a park with grass and a tree.",
        objects=objects,
        facts=facts,
        height=height,
        width=width,
        seed=seed + 17,
    )


def make_street_scene(seed: int = 0, height: int = 360, width: int = 640) -> Scene:
    """A street scene rich in text (signs, plates) and counting targets."""
    rng = np.random.default_rng(seed + 41)
    sign_text = str(rng.choice(["STOP", "SLOW", "YIELD", "EXIT"]))
    plate = f"{rng.integers(100, 999)}"
    car_count = int(rng.integers(2, 7))
    pedestrian_action = str(rng.choice(["crossing the road", "waiting", "running", "cycling"]))
    pedestrian_glance = str(
        rng.choice(["glances at the parked car", "never looks at the parked car"])
    )

    objects = [
        SceneObject(
            name="road_sign",
            concepts=("sign", "text", "road", "traffic"),
            bbox=(0.05, 0.08, 0.16, 0.18),
            detail_scale=0.9,
            base_intensity=210.0,
            texture_contrast=60.0,
            texture_seed=21,
        ),
        SceneObject(
            name="license_plate",
            concepts=("plate", "text", "numbers", "car"),
            bbox=(0.45, 0.62, 0.10, 0.06),
            detail_scale=0.95,
            base_intensity=230.0,
            texture_contrast=65.0,
            texture_seed=22,
        ),
        SceneObject(
            name="cars",
            concepts=("car", "vehicles", "traffic"),
            bbox=(0.30, 0.45, 0.55, 0.30),
            detail_scale=0.6,
            base_intensity=120.0,
            texture_seed=23,
        ),
        SceneObject(
            name="pedestrian",
            concepts=("pedestrian", "person", "walking", "action"),
            bbox=(0.10, 0.40, 0.12, 0.45),
            detail_scale=0.25,
            base_intensity=140.0,
            velocity=(0.02, 0.0),
            texture_seed=24,
        ),
        SceneObject(
            name="pedestrian_face",
            concepts=("pedestrian", "head", "person", "action"),
            bbox=(0.13, 0.41, 0.05, 0.07),
            detail_scale=0.70,
            base_intensity=180.0,
            texture_contrast=50.0,
            velocity=(0.02, 0.0),
            texture_seed=26,
        ),
        SceneObject(
            name="buildings",
            concepts=("building", "background", "city"),
            bbox=(0.0, 0.0, 1.0, 0.35),
            detail_scale=0.2,
            base_intensity=160.0,
            texture_contrast=20.0,
            texture_seed=25,
        ),
    ]
    facts = [
        SceneFact(
            object_name="road_sign",
            key="sign_text",
            value=sign_text,
            domain=("STOP", "SLOW", "YIELD", "EXIT"),
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.88,
            question="What does the road sign say?",
            query_concepts=("sign", "text", "road"),
        ),
        SceneFact(
            object_name="license_plate",
            key="plate_number",
            value=plate,
            domain=tuple(sorted({plate, "123", "457", "808", "336"})),
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.95,
            question="What number is on the license plate of the parked car?",
            multi_frame=True,
            query_concepts=("plate", "numbers", "car"),
        ),
        SceneFact(
            object_name="cars",
            key="car_count",
            value=str(car_count),
            domain=tuple(str(v) for v in range(2, 7)),
            category=CATEGORY_COUNTING,
            detail_scale=0.25,
            question="How many cars are visible in the street?",
            query_concepts=("car", "vehicles"),
        ),
        SceneFact(
            object_name="pedestrian_face",
            key="pedestrian_glance",
            value=pedestrian_glance,
            domain=("glances at the parked car", "never looks at the parked car"),
            category=CATEGORY_ACTION,
            detail_scale=0.66,
            question="Does the pedestrian glance at the parked car while passing it?",
            multi_frame=True,
            query_concepts=("pedestrian", "action", "head"),
        ),
        SceneFact(
            object_name="pedestrian",
            key="action",
            value=pedestrian_action,
            domain=("crossing the road", "waiting", "running", "cycling"),
            category=CATEGORY_ACTION,
            detail_scale=0.2,
            question="What is the pedestrian doing over the course of the video?",
            multi_frame=True,
            query_concepts=("pedestrian", "action", "person"),
        ),
        SceneFact(
            object_name="pedestrian",
            key="position",
            value="left",
            domain=("left", "right"),
            category=CATEGORY_SPATIAL,
            detail_scale=0.1,
            question="Does the pedestrian start on the left or the right of the frame?",
            query_concepts=("pedestrian", "position"),
        ),
    ]
    return Scene(
        name=f"street_{seed}",
        description="A street with a road sign, parked cars, and a pedestrian.",
        objects=objects,
        facts=facts,
        height=height,
        width=width,
        seed=seed + 41,
    )


def make_kitchen_scene(seed: int = 0, height: int = 360, width: int = 640) -> Scene:
    """A cooking scene with label text, ingredient counts, and an action."""
    rng = np.random.default_rng(seed + 73)
    label = str(rng.choice(["FLOUR", "SUGAR", "SALT", "RICE"]))
    timer = f"{rng.integers(1, 6)}:{rng.integers(10, 59)}"
    item_count = int(rng.integers(2, 8))
    action = str(rng.choice(["chopping vegetables", "stirring a pot", "pouring water", "plating food"]))
    stir_direction = str(rng.choice(["clockwise", "counterclockwise"]))
    utensil = str(rng.choice(["a small spoon", "a whisk", "a peeler", "a thermometer"]))

    objects = [
        SceneObject(
            name="jar_label",
            concepts=("label", "text", "jar", "ingredient"),
            bbox=(0.70, 0.30, 0.15, 0.20),
            detail_scale=0.9,
            base_intensity=215.0,
            texture_contrast=60.0,
            texture_seed=31,
        ),
        SceneObject(
            name="timer",
            concepts=("timer", "numbers", "text", "clock"),
            bbox=(0.05, 0.05, 0.14, 0.12),
            detail_scale=0.92,
            base_intensity=40.0,
            texture_contrast=70.0,
            texture_seed=32,
        ),
        SceneObject(
            name="ingredients",
            concepts=("ingredients", "food", "vegetables"),
            bbox=(0.25, 0.55, 0.40, 0.30),
            detail_scale=0.65,
            base_intensity=150.0,
            texture_seed=33,
        ),
        SceneObject(
            name="cook",
            concepts=("cook", "person", "hands", "action"),
            bbox=(0.30, 0.20, 0.30, 0.50),
            detail_scale=0.25,
            base_intensity=135.0,
            texture_seed=34,
        ),
        SceneObject(
            name="utensil",
            concepts=("utensil", "spoon", "hands", "ingredient"),
            bbox=(0.62, 0.58, 0.07, 0.08),
            detail_scale=0.78,
            base_intensity=200.0,
            texture_contrast=55.0,
            texture_seed=35,
        ),
    ]
    facts = [
        SceneFact(
            object_name="jar_label",
            key="label_text",
            value=label,
            domain=("FLOUR", "SUGAR", "SALT", "RICE"),
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.88,
            question="What is written on the jar label on the counter?",
            query_concepts=("label", "text", "jar"),
        ),
        SceneFact(
            object_name="timer",
            key="timer_value",
            value=timer,
            domain=tuple(sorted({timer, "1:30", "2:45", "4:15", "5:20"})),
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.92,
            question="What time is shown on the kitchen timer?",
            multi_frame=True,
            query_concepts=("timer", "numbers", "clock"),
        ),
        SceneFact(
            object_name="ingredients",
            key="item_count",
            value=str(item_count),
            domain=tuple(str(v) for v in range(2, 8)),
            category=CATEGORY_COUNTING,
            detail_scale=0.25,
            question="How many ingredients are laid out on the counter?",
            query_concepts=("ingredients", "food"),
        ),
        SceneFact(
            object_name="utensil",
            key="utensil_kind",
            value=utensil,
            domain=("a small spoon", "a whisk", "a peeler", "a thermometer"),
            category=CATEGORY_OBJECT,
            detail_scale=0.76,
            question="What small utensil is lying next to the ingredients?",
            query_concepts=("utensil", "spoon", "ingredient"),
        ),
        SceneFact(
            object_name="utensil",
            key="stir_direction",
            value=stir_direction,
            domain=("clockwise", "counterclockwise"),
            category=CATEGORY_ACTION,
            detail_scale=0.68,
            question="In which direction is the mixture being stirred?",
            multi_frame=True,
            query_concepts=("hands", "action", "cook"),
        ),
        SceneFact(
            object_name="cook",
            key="action",
            value=action,
            domain=("chopping vegetables", "stirring a pot", "pouring water", "plating food"),
            category=CATEGORY_ACTION,
            detail_scale=0.2,
            question="What is the cook doing in this clip?",
            multi_frame=True,
            query_concepts=("cook", "action", "hands"),
        ),
        SceneFact(
            object_name="cook",
            key="present",
            value="yes",
            domain=("yes", "no"),
            category=CATEGORY_OBJECT,
            detail_scale=0.05,
            question="Is a person visible in the kitchen?",
            query_concepts=("person", "cook"),
        ),
    ]
    return Scene(
        name=f"kitchen_{seed}",
        description="A cooking scene with labelled jars, a timer, and ingredients.",
        objects=objects,
        facts=facts,
        height=height,
        width=width,
        seed=seed + 73,
    )


def make_lecture_scene(seed: int = 0, height: int = 360, width: int = 640) -> Scene:
    """A lecture scene dominated by slide text — the text-rich heavy case."""
    rng = np.random.default_rng(seed + 97)
    slide_title = str(rng.choice(["NETWORKS", "PROTOCOLS", "LATENCY", "CODECS"]))
    equation = str(rng.choice(["y=ax+b", "E=mc^2", "a^2+b^2", "F=ma"]))
    bullet_count = int(rng.integers(3, 7))

    objects = [
        SceneObject(
            name="slide_title",
            concepts=("slide", "title", "text", "lecture"),
            bbox=(0.18, 0.08, 0.34, 0.09),
            detail_scale=0.85,
            base_intensity=235.0,
            texture_contrast=60.0,
            texture_seed=41,
        ),
        SceneObject(
            name="slide_equation",
            concepts=("equation", "math", "text", "formula"),
            bbox=(0.22, 0.32, 0.26, 0.11),
            detail_scale=0.93,
            base_intensity=240.0,
            texture_contrast=65.0,
            texture_seed=42,
        ),
        SceneObject(
            name="slide_bullets",
            concepts=("bullets", "list", "text", "slide"),
            bbox=(0.22, 0.52, 0.30, 0.22),
            detail_scale=0.8,
            base_intensity=238.0,
            texture_contrast=55.0,
            texture_seed=43,
        ),
        SceneObject(
            name="lecturer",
            concepts=("lecturer", "person", "speaker", "action"),
            bbox=(0.75, 0.35, 0.20, 0.55),
            detail_scale=0.2,
            base_intensity=130.0,
            texture_seed=44,
        ),
    ]
    facts = [
        SceneFact(
            object_name="slide_title",
            key="title",
            value=slide_title,
            domain=("NETWORKS", "PROTOCOLS", "LATENCY", "CODECS"),
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.82,
            question="What is the title of the slide being presented?",
            query_concepts=("slide", "title", "text"),
        ),
        SceneFact(
            object_name="slide_equation",
            key="equation",
            value=equation,
            domain=("y=ax+b", "E=mc^2", "a^2+b^2", "F=ma"),
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.93,
            question="Which equation appears on the slide?",
            multi_frame=True,
            query_concepts=("equation", "math", "formula"),
        ),
        SceneFact(
            object_name="slide_bullets",
            key="bullet_count",
            value=str(bullet_count),
            domain=tuple(str(v) for v in range(3, 7)),
            category=CATEGORY_COUNTING,
            detail_scale=0.7,
            question="How many bullet points are listed on the slide?",
            multi_frame=True,
            query_concepts=("bullets", "list", "slide"),
        ),
        SceneFact(
            object_name="lecturer",
            key="action",
            value="pointing at the slide",
            domain=("pointing at the slide", "writing on a board", "sitting", "leaving the room"),
            category=CATEGORY_ACTION,
            detail_scale=0.2,
            question="What is the lecturer doing during the clip?",
            multi_frame=True,
            query_concepts=("lecturer", "action", "person"),
        ),
        SceneFact(
            object_name="lecturer",
            key="position",
            value="right",
            domain=("left", "right"),
            category=CATEGORY_SPATIAL,
            detail_scale=0.1,
            question="Is the lecturer standing on the left or the right of the slide?",
            query_concepts=("lecturer", "position"),
        ),
    ]
    return Scene(
        name=f"lecture_{seed}",
        description="A lecture with a text-heavy slide and a lecturer.",
        objects=objects,
        facts=facts,
        height=height,
        width=width,
        seed=seed + 97,
    )


SCENE_BUILDERS = {
    "sports": make_sports_scene,
    "park": make_park_scene,
    "street": make_street_scene,
    "kitchen": make_kitchen_scene,
    "lecture": make_lecture_scene,
}


def build_scene_corpus(
    count: int,
    seed: int = 0,
    height: int = 360,
    width: int = 640,
    kinds: Optional[Sequence[str]] = None,
) -> list[Scene]:
    """Build a corpus of synthetic scenes cycling through the scene kinds.

    The kind mix is weighted towards text-rich scenes (lecture, street,
    kitchen) so that the generated QA distribution lands near the paper's
    Figure 8 (text-rich understanding dominates at ~55 %).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if kinds is None:
        # Weighted cycle: text-heavy kinds appear more often.
        kinds = ("lecture", "street", "kitchen", "sports", "lecture", "street", "park", "kitchen")
    unknown = set(kinds) - set(SCENE_BUILDERS)
    if unknown:
        raise ValueError(f"unknown scene kinds: {sorted(unknown)}")
    scenes = []
    for index in range(count):
        kind = kinds[index % len(kinds)]
        scenes.append(SCENE_BUILDERS[kind](seed=seed + index, height=height, width=width))
    return scenes
