"""Group-of-pictures (GOP) structure: intra (I) and predicted (P) frames.

Real RTC encoders send an occasional intra frame and encode the rest as
predictions from the previous reconstruction, which is why frame sizes are
uneven (the transport workload models this with ``iframe_interval``).  The
GOP encoder here closes the loop for the video substrate: P-frames encode
the residual against the previous *reconstructed* frame, so drift behaves
like a real codec and the bit savings of temporal prediction are genuine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from .codec import BlockCodec, CodecConfig, EncodedFrame


@dataclass
class GopConfig:
    """GOP structure configuration."""

    keyframe_interval: int = 30
    #: QP delta applied to P-frames relative to the configured QP (P-frames
    #: typically use a slightly larger QP because residuals are sparse).
    p_frame_qp_offset: float = 2.0

    def __post_init__(self) -> None:
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")


class GopEncoder:
    """Encodes a frame sequence as I/P frames with per-frame QP control."""

    def __init__(
        self,
        codec: Optional[BlockCodec] = None,
        gop_config: Optional[GopConfig] = None,
    ) -> None:
        self.codec = codec or BlockCodec()
        self.gop_config = gop_config or GopConfig()
        self._previous_reconstruction: Optional[np.ndarray] = None
        self._frame_index = 0

    def reset(self) -> None:
        self._previous_reconstruction = None
        self._frame_index = 0

    def encode_next(
        self,
        pixels: np.ndarray,
        qp: Union[int, float, np.ndarray] = 30,
        timestamp: Optional[float] = None,
        force_keyframe: bool = False,
    ) -> tuple[EncodedFrame, np.ndarray]:
        """Encode the next frame; returns the encoded frame and its reconstruction."""
        pixels = np.asarray(pixels, dtype=np.float64)
        index = self._frame_index
        timestamp = timestamp if timestamp is not None else 0.0
        is_keyframe = (
            force_keyframe
            or self._previous_reconstruction is None
            or index % self.gop_config.keyframe_interval == 0
            or self._previous_reconstruction.shape != pixels.shape
        )

        if is_keyframe:
            encoded = self.codec.encode(
                pixels, qp, frame_id=index, timestamp=timestamp, is_keyframe=True
            )
            reconstruction = self.codec.decode(encoded)
        else:
            residual = pixels - self._previous_reconstruction
            p_qp = np.clip(
                np.asarray(qp, dtype=float) + self.gop_config.p_frame_qp_offset, 0, 51
            )
            encoded = self.codec.encode(
                residual, p_qp, frame_id=index, timestamp=timestamp, is_keyframe=False
            )
            decoded_residual = self.codec.decode(encoded)
            reconstruction = np.clip(self._previous_reconstruction + decoded_residual, 0, 255)
            encoded.metadata["predicted"] = True

        self._previous_reconstruction = reconstruction
        self._frame_index += 1
        return encoded, reconstruction

    def encode_sequence(
        self,
        frames: Iterable[np.ndarray],
        qp: Union[int, float, np.ndarray] = 30,
        fps: float = 30.0,
    ) -> tuple[list[EncodedFrame], list[np.ndarray]]:
        """Encode a whole sequence; returns encoded frames and reconstructions."""
        self.reset()
        encoded_frames: list[EncodedFrame] = []
        reconstructions: list[np.ndarray] = []
        for index, pixels in enumerate(frames):
            encoded, reconstruction = self.encode_next(pixels, qp, timestamp=index / fps)
            encoded_frames.append(encoded)
            reconstructions.append(reconstruction)
        return encoded_frames, reconstructions


class GopDecoder:
    """Decodes an I/P stream produced by :class:`GopEncoder`.

    Decoding requires the previous reconstruction for P-frames; a missing
    reference (e.g. an undelivered frame in the transport) raises, which is
    how downstream code models the decoder stalling until the next keyframe.
    """

    def __init__(self, codec: Optional[BlockCodec] = None) -> None:
        self.codec = codec or BlockCodec()
        self._previous_reconstruction: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._previous_reconstruction = None

    def decode_next(self, encoded: EncodedFrame) -> np.ndarray:
        if encoded.is_keyframe:
            reconstruction = self.codec.decode(encoded)
        else:
            if self._previous_reconstruction is None:
                raise ValueError(
                    f"cannot decode P-frame {encoded.frame_id}: reference frame missing"
                )
            residual = self.codec.decode(encoded)
            reconstruction = np.clip(self._previous_reconstruction + residual, 0, 255)
        self._previous_reconstruction = reconstruction
        return reconstruction

    def decode_sequence(self, encoded_frames: Iterable[EncodedFrame]) -> list[np.ndarray]:
        self.reset()
        return [self.decode_next(frame) for frame in encoded_frames]
