"""Rate control: hit a target bitrate by searching over QP.

The paper's footnote to Figure 9 describes exactly this problem: "During
Kvazaar encoding, the target bitrate often differs greatly from the actual
bitrate.  So we use a trial-and-error approach to ensure that the actual
bitrates of ours and the baseline are comparable."  We implement that
trial-and-error loop as a bisection over a QP offset applied either to a
uniform QP (the baseline) or on top of a context-aware QP map (ours), so
matched-bitrate comparisons are possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .codec import MAX_QP, MIN_QP, BlockCodec, EncodedFrame


@dataclass
class RateControlResult:
    """Outcome of a rate-control search for a single frame."""

    encoded: EncodedFrame
    qp_offset: float
    target_bits: float
    achieved_bits: float
    iterations: int

    @property
    def relative_error(self) -> float:
        if self.target_bits <= 0:
            return float("inf")
        return abs(self.achieved_bits - self.target_bits) / self.target_bits


def _clamped_qp(base: Union[float, np.ndarray], offset: float) -> Union[float, np.ndarray]:
    return np.clip(np.asarray(base, dtype=float) + offset, MIN_QP, MAX_QP)


def encode_at_target_bitrate(
    codec: BlockCodec,
    pixels: np.ndarray,
    target_bitrate_bps: float,
    fps: float,
    base_qp_map: Union[int, float, np.ndarray] = 30,
    tolerance: float = 0.05,
    max_iterations: int = 12,
    frame_id: int = 0,
    timestamp: float = 0.0,
) -> RateControlResult:
    """Encode one frame so its bit budget approximates ``target_bitrate / fps``.

    A scalar offset is added to ``base_qp_map`` (which may be a scalar for
    uniform encoding, or a context-aware per-block map) and bisected until
    the achieved size is within ``tolerance`` of the per-frame budget, or the
    iteration limit is reached (the trial-and-error loop the paper uses).
    """
    if target_bitrate_bps <= 0 or fps <= 0:
        raise ValueError("target_bitrate_bps and fps must be positive")
    target_bits = target_bitrate_bps / fps

    base = np.asarray(base_qp_map, dtype=float)

    low_offset = float(MIN_QP - base.max())
    high_offset = float(MAX_QP - base.min())

    best: Optional[tuple[float, EncodedFrame, float]] = None
    iterations = 0
    offset = 0.0
    for iterations in range(1, max_iterations + 1):
        offset = (low_offset + high_offset) / 2.0
        encoded = codec.encode(
            pixels,
            _clamped_qp(base_qp_map, offset),
            frame_id=frame_id,
            timestamp=timestamp,
        )
        error = abs(encoded.total_bits - target_bits)
        if best is None or error < best[2]:
            best = (offset, encoded, error)
        if encoded.total_bits > target_bits:
            low_offset = offset  # too many bits -> raise QP
        else:
            high_offset = offset  # too few bits -> lower QP
        if target_bits > 0 and error / target_bits <= tolerance:
            break

    assert best is not None  # max_iterations >= 1 guarantees at least one encode
    chosen_offset, encoded, _ = best
    return RateControlResult(
        encoded=encoded,
        qp_offset=chosen_offset,
        target_bits=target_bits,
        achieved_bits=encoded.total_bits,
        iterations=iterations,
    )


def encode_sequence_at_target_bitrate(
    codec: BlockCodec,
    frames: list[np.ndarray],
    target_bitrate_bps: float,
    fps: float,
    base_qp_maps: Optional[list[Union[int, float, np.ndarray]]] = None,
    tolerance: float = 0.05,
    max_iterations: int = 10,
) -> list[RateControlResult]:
    """Rate-control every frame of a sequence to the same per-frame budget."""
    results = []
    for index, pixels in enumerate(frames):
        base = 30 if base_qp_maps is None else base_qp_maps[index]
        results.append(
            encode_at_target_bitrate(
                codec,
                pixels,
                target_bitrate_bps,
                fps,
                base_qp_map=base,
                tolerance=tolerance,
                max_iterations=max_iterations,
                frame_id=index,
                timestamp=index / fps,
            )
        )
    return results


def achieved_bitrate_bps(results: list[RateControlResult], fps: float) -> float:
    """Average bitrate actually achieved by a rate-controlled sequence."""
    if not results:
        return 0.0
    total_bits = sum(result.achieved_bits for result in results)
    return total_bits * fps / len(results)
