"""Transcoding high-bitrate video down to low-bitrate versions.

DeViBench's preprocessing step (Section 3.1) transcodes every source video
to a 200 Kbps rendition so the QA-generation MLLM can see the original and
the degraded version side by side.  This module provides that step on top
of the block codec and the rate controller, plus the side-by-side
concatenation used by the generation prompt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .codec import BlockCodec
from .frames import ArrayVideoSource, VideoSource
from .quality import psnr
from .rate_control import RateControlResult, achieved_bitrate_bps, encode_sequence_at_target_bitrate


@dataclass
class TranscodeResult:
    """A transcoded rendition of a video source."""

    frames: list[np.ndarray]
    rate_control: list[RateControlResult]
    target_bitrate_bps: float
    achieved_bitrate_bps: float
    fps: float
    mean_psnr_db: float = float("nan")

    def to_source(self) -> ArrayVideoSource:
        return ArrayVideoSource(self.frames, fps=self.fps)


def transcode_to_bitrate(
    source: VideoSource,
    target_bitrate_bps: float,
    codec: Optional[BlockCodec] = None,
    max_frames: Optional[int] = None,
    frame_stride: int = 1,
    tolerance: float = 0.08,
    rate_fps: Optional[float] = None,
) -> TranscodeResult:
    """Re-encode a source at a target bitrate and return decoded frames.

    ``frame_stride`` lets callers subsample the source (DeViBench only needs
    the frames the MLLM will actually look at).  The per-frame bit budget is
    ``target_bitrate / rate_fps``; ``rate_fps`` defaults to the *source*
    frame rate because that is how the paper's 200 Kbps renditions are
    produced — the full-rate video is transcoded and only then sampled, so a
    200 Kbps budget is spread over every source frame, not just the sampled
    ones.
    """
    if frame_stride < 1:
        raise ValueError("frame_stride must be >= 1")
    codec = codec or BlockCodec()
    indices = range(0, source.frame_count(), frame_stride)
    if max_frames is not None:
        indices = list(indices)[:max_frames]
    originals = [source.frame_at(index).pixels for index in indices]
    if not originals:
        raise ValueError("source produced no frames to transcode")
    effective_fps = float(rate_fps) if rate_fps is not None else source.fps
    if effective_fps <= 0:
        raise ValueError("rate_fps must be positive")

    results = encode_sequence_at_target_bitrate(
        codec,
        originals,
        target_bitrate_bps=target_bitrate_bps,
        fps=effective_fps,
        tolerance=tolerance,
    )
    decoded = [codec.decode(result.encoded) for result in results]
    achieved = achieved_bitrate_bps(results, effective_fps)
    return TranscodeResult(
        frames=decoded,
        rate_control=results,
        target_bitrate_bps=target_bitrate_bps,
        achieved_bitrate_bps=achieved,
        fps=effective_fps,
        mean_psnr_db=float(np.mean([psnr(orig, dec) for orig, dec in zip(originals, decoded)])),
    )


def concatenate_side_by_side(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Horizontally concatenate two frames (DeViBench's preprocessing step).

    If heights differ, the shorter frame is padded with mid-grey so the
    concatenation stays rectangular.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    height = max(left.shape[0], right.shape[0])

    def pad(frame: np.ndarray) -> np.ndarray:
        if frame.shape[0] == height:
            return frame
        padding = np.full((height - frame.shape[0], frame.shape[1]), 128.0)
        return np.vstack([frame, padding])

    return np.hstack([pad(left), pad(right)])
