"""Video frame and video source abstractions.

Frames are single-channel (luma) numpy arrays with values in [0, 255].  The
paper's pipeline operates on full RGB video, but every quantity the
experiments measure — per-region rate/distortion, bitrate, regional quality,
MLLM-visible detail — is carried by the luma plane, and a single channel
keeps the pure-Python codec fast enough for exhaustive testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np


@dataclass
class VideoFrame:
    """One captured video frame."""

    frame_id: int
    timestamp: float
    pixels: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels, dtype=np.float64)
        if pixels.ndim != 2:
            raise ValueError(f"pixels must be a 2-D luma array, got shape {pixels.shape}")
        self.pixels = pixels

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def resolution(self) -> tuple[int, int]:
        return (self.height, self.width)

    @property
    def pixel_count(self) -> int:
        return self.height * self.width

    def copy(self) -> "VideoFrame":
        return VideoFrame(
            frame_id=self.frame_id,
            timestamp=self.timestamp,
            pixels=self.pixels.copy(),
            metadata=dict(self.metadata),
        )


class VideoSource:
    """Interface for anything that can produce a timed sequence of frames."""

    fps: float
    height: int
    width: int

    def frame_at(self, index: int) -> VideoFrame:  # pragma: no cover - interface
        raise NotImplementedError

    def frame_count(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def __iter__(self) -> Iterator[VideoFrame]:
        for index in range(self.frame_count()):
            yield self.frame_at(index)

    @property
    def duration_s(self) -> float:
        return self.frame_count() / self.fps

    def raw_bitrate_bps(self, bits_per_pixel: float = 8.0) -> float:
        """Uncompressed bitrate of the source (used for redundancy figures)."""
        return self.height * self.width * bits_per_pixel * self.fps


class ArrayVideoSource(VideoSource):
    """A video source backed by an in-memory list of frames."""

    def __init__(self, frames: Sequence[np.ndarray], fps: float = 30.0, start_time: float = 0.0) -> None:
        if not frames:
            raise ValueError("ArrayVideoSource needs at least one frame")
        shapes = {np.asarray(f).shape for f in frames}
        if len(shapes) != 1:
            raise ValueError(f"all frames must share one shape, got {shapes}")
        self._frames = [np.asarray(f, dtype=np.float64) for f in frames]
        self.fps = float(fps)
        self.height, self.width = self._frames[0].shape
        self._start_time = start_time

    def frame_count(self) -> int:
        return len(self._frames)

    def frame_at(self, index: int) -> VideoFrame:
        if not 0 <= index < len(self._frames):
            raise IndexError(f"frame index {index} out of range [0, {len(self._frames)})")
        return VideoFrame(
            frame_id=index,
            timestamp=self._start_time + index / self.fps,
            pixels=self._frames[index],
        )


class SyntheticNoiseSource(VideoSource):
    """A reproducible noise/gradient source used in transport-only tests."""

    def __init__(
        self,
        height: int = 180,
        width: int = 320,
        fps: float = 30.0,
        frame_total: int = 300,
        seed: int = 0,
    ) -> None:
        if height <= 0 or width <= 0:
            raise ValueError("height and width must be positive")
        self.height = int(height)
        self.width = int(width)
        self.fps = float(fps)
        self._frame_total = int(frame_total)
        self._seed = seed
        base_rng = np.random.default_rng(seed)
        yy, xx = np.mgrid[0:height, 0:width]
        self._gradient = 64 + 96 * (xx / max(width - 1, 1)) + 32 * (yy / max(height - 1, 1))
        self._texture = base_rng.normal(0, 12.0, size=(height, width))

    def frame_count(self) -> int:
        return self._frame_total

    def frame_at(self, index: int) -> VideoFrame:
        if not 0 <= index < self._frame_total:
            raise IndexError(f"frame index {index} out of range")
        rng = np.random.default_rng(self._seed + index + 1)
        drift = rng.normal(0, 2.0, size=(self.height, self.width))
        pixels = np.clip(self._gradient + self._texture + drift, 0, 255)
        return VideoFrame(frame_id=index, timestamp=index / self.fps, pixels=pixels)


def downsample_frame(frame: VideoFrame, max_pixels: int) -> VideoFrame:
    """Spatially downsample a frame so its pixel count is at most ``max_pixels``.

    Used by the MLLM ingestion path (Section 2.1): regardless of the source
    resolution, the model sees no more than ~602,112 pixels per frame.
    Downsampling is done by integer block averaging to stay dependency-free.
    """
    if max_pixels <= 0:
        raise ValueError("max_pixels must be positive")
    if frame.pixel_count <= max_pixels:
        return frame
    factor = int(np.ceil(np.sqrt(frame.pixel_count / max_pixels)))
    height = frame.height - frame.height % factor
    width = frame.width - frame.width % factor
    trimmed = frame.pixels[:height, :width]
    reduced = trimmed.reshape(height // factor, factor, width // factor, factor).mean(axis=(1, 3))
    return VideoFrame(
        frame_id=frame.frame_id,
        timestamp=frame.timestamp,
        pixels=reduced,
        metadata={**frame.metadata, "downsampled_by": factor},
    )
