"""Video quality metrics: global, per-region and per-block.

Traditional RTC optimises these metrics directly (the paper cites SSIM and
VMAF); AI Video Chat instead uses them as an *intermediate* quantity — the
simulated MLLM can only read a scene attribute when the decoded quality of
the attribute's region is good enough for its detail level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

MAX_PIXEL = 255.0


def mse(original: np.ndarray, degraded: np.ndarray) -> float:
    """Mean squared error between two luma arrays."""
    original = np.asarray(original, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    if original.shape != degraded.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {degraded.shape}")
    return float(np.mean((original - degraded) ** 2))


def psnr(original: np.ndarray, degraded: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical inputs)."""
    error = mse(original, degraded)
    if error <= 1e-12:
        return float("inf")
    return float(10.0 * np.log10(MAX_PIXEL**2 / error))


def region_psnr(
    original: np.ndarray,
    degraded: np.ndarray,
    region: tuple[int, int, int, int],
) -> float:
    """PSNR restricted to a pixel region ``(row0, row1, col0, col1)``."""
    row0, row1, col0, col1 = region
    if row1 <= row0 or col1 <= col0:
        raise ValueError(f"empty region {region}")
    return psnr(original[row0:row1, col0:col1], degraded[row0:row1, col0:col1])


def ssim(original: np.ndarray, degraded: np.ndarray, window: int = 8) -> float:
    """A windowed structural-similarity index (simplified SSIM).

    Computed over non-overlapping ``window`` × ``window`` tiles with the
    standard SSIM constants; sufficient to rank degradations, which is all
    the traditional-QoE baseline needs.
    """
    original = np.asarray(original, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    if original.shape != degraded.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {degraded.shape}")
    height, width = original.shape
    height -= height % window
    width -= width % window
    if height == 0 or width == 0:
        raise ValueError("frame smaller than the SSIM window")

    def tiles(array: np.ndarray) -> np.ndarray:
        trimmed = array[:height, :width]
        return trimmed.reshape(height // window, window, width // window, window).transpose(0, 2, 1, 3)

    x = tiles(original)
    y = tiles(degraded)
    c1 = (0.01 * MAX_PIXEL) ** 2
    c2 = (0.03 * MAX_PIXEL) ** 2
    mu_x = x.mean(axis=(2, 3))
    mu_y = y.mean(axis=(2, 3))
    var_x = x.var(axis=(2, 3))
    var_y = y.var(axis=(2, 3))
    cov = ((x - mu_x[..., None, None]) * (y - mu_y[..., None, None])).mean(axis=(2, 3))
    numerator = (2 * mu_x * mu_y + c1) * (2 * cov + c2)
    denominator = (mu_x**2 + mu_y**2 + c1) * (var_x + var_y + c2)
    return float(np.mean(numerator / denominator))


def high_frequency_retention(
    original: np.ndarray, degraded: np.ndarray, cutoff_fraction: float = 0.25
) -> float:
    """Fraction of the original high-frequency energy surviving degradation.

    Fine details (text, logos, counts) live in the high-frequency band; this
    measures how much of that band the codec preserved, which is the signal
    the simulated MLLM uses to decide whether a detail is still readable.
    """
    if not 0.0 < cutoff_fraction < 1.0:
        raise ValueError("cutoff_fraction must be in (0, 1)")
    original = np.asarray(original, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    if original.shape != degraded.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {degraded.shape}")

    spectrum_original = np.fft.fft2(original)
    spectrum_degraded = np.fft.fft2(degraded)
    height, width = original.shape
    fy = np.fft.fftfreq(height)[:, None]
    fx = np.fft.fftfreq(width)[None, :]
    radius = np.sqrt(fy**2 + fx**2)
    high_band = radius >= cutoff_fraction * radius.max()
    original_energy = float(np.sum(np.abs(spectrum_original[high_band]) ** 2))
    if original_energy <= 1e-12:
        return 1.0
    degraded_energy = float(np.sum(np.abs(spectrum_degraded[high_band]) ** 2))
    retained = float(
        np.sum(
            np.abs(spectrum_degraded[high_band]) * np.abs(spectrum_original[high_band])
        )
    ) / np.sqrt(original_energy * max(degraded_energy, 1e-12))
    return float(np.clip(retained, 0.0, 1.0))


@dataclass
class RegionQualityReport:
    """Quality of one semantic region of a decoded frame."""

    region: tuple[int, int, int, int]
    psnr_db: float
    mse: float
    detail_retention: float

    @property
    def readable_score(self) -> float:
        """A 0–1 score combining PSNR and detail retention.

        PSNR saturates around 45 dB; detail retention handles the fine-text
        regime where PSNR alone is too forgiving.
        """
        psnr_component = float(np.clip((self.psnr_db - 20.0) / 25.0, 0.0, 1.0))
        return 0.5 * psnr_component + 0.5 * self.detail_retention


def region_quality(
    original: np.ndarray,
    degraded: np.ndarray,
    region: tuple[int, int, int, int],
) -> RegionQualityReport:
    """Quality report for a pixel region of a decoded frame."""
    row0, row1, col0, col1 = region
    original_patch = np.asarray(original, dtype=np.float64)[row0:row1, col0:col1]
    degraded_patch = np.asarray(degraded, dtype=np.float64)[row0:row1, col0:col1]
    if original_patch.size == 0:
        raise ValueError(f"empty region {region}")
    return RegionQualityReport(
        region=region,
        psnr_db=psnr(original_patch, degraded_patch),
        mse=mse(original_patch, degraded_patch),
        detail_retention=high_frequency_retention(original_patch, degraded_patch),
    )
