"""A block-transform video codec with per-block quantisation control.

The paper's context-aware streaming (Section 3.2) relies on an encoder that
accepts *per-region* quantisation parameters (it uses Kvazaar's fine-grained
QP control, with x265 for the uniform baseline).  We reproduce the behaviour
those experiments depend on with a block-DCT codec:

* frames are split into ``block_size`` × ``block_size`` blocks;
* each block is transformed with a 2-D DCT and quantised with a step that
  follows the HEVC rule ``Qstep = 2^((QP - 4) / 6)``;
* the bit cost of a block is an entropy-style estimate over the quantised
  coefficients (signed exp-Golomb-like), so rate falls as QP rises and rises
  with texture complexity — the two monotonicities all experiments need;
* decoding inverts the quantisation and transform, so regional distortion is
  a real rate-distortion consequence rather than an assumed curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np
from scipy.fft import dctn, idctn

MIN_QP = 0
MAX_QP = 51


@dataclass
class CodecConfig:
    """Configuration of the block codec."""

    block_size: int = 16
    #: Base quantisation granularity; the effective step is
    #: ``base_step * 2^((QP-4)/6)`` as in HEVC.
    base_step: float = 0.40
    #: Header overhead charged per block (mode/partition signalling).
    header_bits_per_block: float = 12.0
    #: Frame-level overhead (parameter sets, slice headers).
    frame_header_bits: float = 256.0

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.block_size % 2 != 0:
            raise ValueError("block_size must be a positive even integer")
        if self.base_step <= 0:
            raise ValueError("base_step must be positive")

    def quantisation_step(self, qp: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """HEVC-style quantisation step for a QP value (scalar or array)."""
        return self.base_step * np.power(2.0, (np.asarray(qp, dtype=float) - 4.0) / 6.0)


@dataclass
class EncodedFrame:
    """The output of encoding one frame."""

    frame_id: int
    timestamp: float
    shape: tuple[int, int]
    padded_shape: tuple[int, int]
    block_size: int
    qp_map: np.ndarray
    quantised: np.ndarray  # (blocks_y, blocks_x, block, block)
    bits_per_block: np.ndarray
    total_bits: float
    is_keyframe: bool = True
    metadata: dict = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return int(np.ceil(self.total_bits / 8.0))

    @property
    def size_bits(self) -> float:
        return float(self.total_bits)

    def bitrate_bps(self, fps: float) -> float:
        """Bitrate this frame size corresponds to at a given frame rate."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        return self.total_bits * fps

    def bits_in_region(self, row0: int, row1: int, col0: int, col1: int) -> float:
        """Total bits spent on blocks overlapping a pixel-coordinate region."""
        b = self.block_size
        br0, br1 = row0 // b, int(np.ceil(row1 / b))
        bc0, bc1 = col0 // b, int(np.ceil(col1 / b))
        return float(self.bits_per_block[br0:br1, bc0:bc1].sum())


def _pad_to_blocks(pixels: np.ndarray, block: int) -> np.ndarray:
    height, width = pixels.shape
    pad_h = (-height) % block
    pad_w = (-width) % block
    if pad_h == 0 and pad_w == 0:
        return pixels
    return np.pad(pixels, ((0, pad_h), (0, pad_w)), mode="edge")


def _to_blocks(pixels: np.ndarray, block: int) -> np.ndarray:
    """Reshape an (H, W) array into (H/b, W/b, b, b) blocks."""
    height, width = pixels.shape
    blocks = pixels.reshape(height // block, block, width // block, block)
    return blocks.transpose(0, 2, 1, 3)


def _from_blocks(blocks: np.ndarray) -> np.ndarray:
    blocks_y, blocks_x, block, _ = blocks.shape
    return blocks.transpose(0, 2, 1, 3).reshape(blocks_y * block, blocks_x * block)


class BlockCodec:
    """Encoder/decoder pair with per-block QP control."""

    def __init__(self, config: Optional[CodecConfig] = None) -> None:
        self.config = config or CodecConfig()

    # -- QP map handling ---------------------------------------------------

    def block_grid_shape(self, height: int, width: int) -> tuple[int, int]:
        block = self.config.block_size
        return (int(np.ceil(height / block)), int(np.ceil(width / block)))

    def _expand_qp_map(
        self, qp: Union[int, float, np.ndarray], height: int, width: int
    ) -> np.ndarray:
        grid = self.block_grid_shape(height, width)
        if np.isscalar(qp):
            qp_map = np.full(grid, float(qp))
        else:
            qp_map = np.asarray(qp, dtype=float)
            if qp_map.shape != grid:
                raise ValueError(
                    f"qp_map shape {qp_map.shape} does not match block grid {grid} "
                    f"for a {height}x{width} frame with block {self.config.block_size}"
                )
        if (qp_map < MIN_QP).any() or (qp_map > MAX_QP).any():
            raise ValueError(f"QP values must lie in [{MIN_QP}, {MAX_QP}]")
        return qp_map

    # -- encode / decode ----------------------------------------------------

    def encode(
        self,
        pixels: np.ndarray,
        qp: Union[int, float, np.ndarray] = 30,
        frame_id: int = 0,
        timestamp: float = 0.0,
        is_keyframe: bool = True,
    ) -> EncodedFrame:
        """Encode a luma array with a scalar QP or a per-block QP map."""
        pixels = np.asarray(pixels, dtype=np.float64)
        if pixels.ndim != 2:
            raise ValueError(f"expected a 2-D luma array, got shape {pixels.shape}")
        height, width = pixels.shape
        block = self.config.block_size
        qp_map = self._expand_qp_map(qp, height, width)

        padded = _pad_to_blocks(pixels, block)
        blocks = _to_blocks(padded, block)
        coefficients = dctn(blocks, axes=(2, 3), norm="ortho")

        steps = self.config.quantisation_step(qp_map)[:, :, None, None]
        quantised = np.round(coefficients / steps).astype(np.int32)

        bits_per_block = self._estimate_bits(quantised)
        total_bits = float(bits_per_block.sum()) + self.config.frame_header_bits

        return EncodedFrame(
            frame_id=frame_id,
            timestamp=timestamp,
            shape=(height, width),
            padded_shape=padded.shape,
            block_size=block,
            qp_map=qp_map,
            quantised=quantised,
            bits_per_block=bits_per_block,
            total_bits=total_bits,
            is_keyframe=is_keyframe,
        )

    def decode(self, encoded: EncodedFrame) -> np.ndarray:
        """Reconstruct the luma array from an :class:`EncodedFrame`."""
        steps = self.config.quantisation_step(encoded.qp_map)[:, :, None, None]
        coefficients = encoded.quantised.astype(np.float64) * steps
        blocks = idctn(coefficients, axes=(2, 3), norm="ortho")
        padded = _from_blocks(blocks)
        height, width = encoded.shape
        reconstructed = padded[:height, :width]
        if encoded.is_keyframe:
            reconstructed = np.clip(reconstructed, 0, 255)
        return reconstructed

    def roundtrip(
        self, pixels: np.ndarray, qp: Union[int, float, np.ndarray] = 30
    ) -> tuple[EncodedFrame, np.ndarray]:
        encoded = self.encode(pixels, qp)
        return encoded, self.decode(encoded)

    # -- rate model ----------------------------------------------------------

    def _estimate_bits(self, quantised: np.ndarray) -> np.ndarray:
        """Entropy-style bit estimate per block.

        Each non-zero coefficient of magnitude ``m`` costs roughly
        ``2*floor(log2(m)) + 3`` bits (signed exp-Golomb); zero coefficients
        are nearly free thanks to run-length coding, which we charge at a
        small constant aggregated into the block header.
        """
        magnitude = np.abs(quantised).astype(np.float64)
        nonzero = magnitude > 0
        coefficient_bits = np.where(nonzero, 2.0 * np.floor(np.log2(np.maximum(magnitude, 1))) + 3.0, 0.0)
        per_block = coefficient_bits.sum(axis=(2, 3)) + self.config.header_bits_per_block
        return per_block


def encode_video(
    frames: list[np.ndarray],
    qp: Union[int, float, np.ndarray] = 30,
    config: Optional[CodecConfig] = None,
    fps: float = 30.0,
) -> list[EncodedFrame]:
    """Intra-encode a list of frames at a fixed QP (all keyframes)."""
    codec = BlockCodec(config)
    return [
        codec.encode(frame, qp, frame_id=index, timestamp=index / fps)
        for index, frame in enumerate(frames)
    ]


def average_bitrate_bps(encoded: list[EncodedFrame], fps: float) -> float:
    """Average bitrate of an encoded sequence at a given frame rate."""
    if not encoded:
        return 0.0
    total_bits = sum(frame.total_bits for frame in encoded)
    duration = len(encoded) / fps
    return total_bits / duration
