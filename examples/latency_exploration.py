"""Explore the transmission-latency landscape of Figure 3 and the 300 ms budget.

Sweeps bitrate and packet loss over the emulated 10 Mbps / 30 ms path the
paper's prototype uses, prints the measured frame transmission latency, and
then shows how much of the 300 ms response budget remains for the network
once autoregressive MLLM inference is accounted for — the argument that
pushes AI Video Chat towards ultra-low bitrates.

Run with:  python examples/latency_exploration.py
"""

from __future__ import annotations

from repro.analysis import (
    format_figure3,
    format_mapping,
    run_figure3_latency,
    run_section1_latency_budget,
)
from repro.net import AiOrientedAbr, ThroughputAbr, expected_frame_latency


def main() -> None:
    print("Measured frame transmission latency (10 Mbps bottleneck, 30 ms one-way delay):\n")
    rows = run_figure3_latency(
        bitrates_bps=(200_000, 1_000_000, 4_000_000, 8_000_000, 12_000_000),
        loss_rates=(0.0, 0.05),
        duration_s=10.0,
    )
    print(format_figure3(rows))
    print()

    print("Response latency budgets (Section 1):\n")
    print(format_mapping("budgets", run_section1_latency_budget()))
    print()

    # Compare the bitrate a traditional ABR would pick with the AI-oriented one.
    traditional = ThroughputAbr().decide(bandwidth_estimate_bps=10_000_000.0)
    ai_policy = AiOrientedAbr(
        accuracy_target=0.85,
        accuracy_predictor=lambda rate: 0.9 if rate >= 400_000 else 0.4,
        latency_budget_s=0.068,
        latency_predictor=lambda rate: expected_frame_latency(
            rate, fps=30, bandwidth_bps=10_000_000.0, loss_rate=0.05, rtt_s=0.065
        ),
    )
    ai = ai_policy.decide(bandwidth_estimate_bps=10_000_000.0)
    print(f"traditional ABR picks : {traditional.bitrate_bps / 1e6:.1f} Mbps (grey region)")
    print(f"AI-oriented ABR picks : {ai.bitrate_bps / 1e6:.1f} Mbps (yellow region, {ai.reason})")


if __name__ == "__main__":
    main()
