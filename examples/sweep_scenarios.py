"""Multi-scenario sweep: every loss regime × seeds × experiments, in parallel.

The paper evaluates each figure at one operating point (a Bernoulli loss
rate on a fixed 10 Mbps link).  This example fans three experiment runners
out across a scenario grid — i.i.d. loss, Gilbert-Elliott bursty loss, and
a trace-driven time-varying link — with four seeds per cell, using every
core available.  Results are persisted as JSON under ``results/`` and
re-running the script is (almost) free: unchanged cells load from the
content-hash cache instead of re-executing.

Run with:
    PYTHONPATH=src python examples/sweep_scenarios.py            # full grid
    PYTHONPATH=src python examples/sweep_scenarios.py --smoke    # 2-cell CI smoke run
"""

from __future__ import annotations

import argparse
import statistics

from repro.analysis import (
    SweepGrid,
    SweepReport,
    SweepRunner,
    bernoulli_scenario,
    gilbert_elliott_scenario,
    trace_scenario,
)

#: Keep runner costs modest so the full grid finishes in well under a minute.
FAST = {"duration_s": 4.0, "height": 160, "width": 288}

SCENARIOS = (
    bernoulli_scenario(0.02, name="iid-2pct", **FAST),
    gilbert_elliott_scenario(
        p_good_to_bad=0.03,
        p_bad_to_good=0.3,
        loss_in_bad=0.5,
        name="bursty",
        **FAST,
    ),
    trace_scenario(
        times=[0.0, 1.5, 3.0],
        rates_bps=[10e6, 2.5e6, 8e6],
        loss_rate=0.01,
        name="trace-droop",
        **FAST,
    ),
)

EXPERIMENTS = ("figure2_redundancy", "figure3_latency", "end_to_end_turn")
SEEDS = (0, 1, 2, 3)


def summarize(report: SweepReport) -> None:
    print(
        f"{len(report.cells)} cells — {report.executed} executed, "
        f"{report.cached} from cache, {report.elapsed_s:.2f}s"
    )
    for experiment in sorted({cell.experiment for cell in report.cells}):
        cells = report.for_experiment(experiment)
        by_scenario: dict[str, list] = {}
        for cell in cells:
            by_scenario.setdefault(cell.scenario.name, []).append(cell)
        print(f"\n  {experiment}")
        for scenario_name, group in sorted(by_scenario.items()):
            metric = _headline_metric(experiment, group)
            print(f"    {scenario_name:<14} ({len(group)} seeds)  {metric}")


def _headline_metric(experiment: str, cells: list) -> str:
    """One human-readable number per (experiment, scenario) group."""
    try:
        if experiment == "figure2_redundancy":
            values = [cell.result["frame_redundancy"] for cell in cells]
            return f"frame_redundancy ≈ {statistics.mean(values):.3f}"
        if experiment == "figure3_latency":
            values = [row["mean_latency_ms"] for cell in cells for row in cell.result]
            return f"mean latency ≈ {statistics.mean(values):.1f} ms"
        if experiment == "end_to_end_turn":
            values = [cell.result["response_latency_ms"] for cell in cells]
            return f"response latency ≈ {statistics.mean(values):.1f} ms"
    except (KeyError, TypeError, statistics.StatisticsError):
        pass
    return "(see JSON)"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a 2-cell grid (1 experiment × 2 scenarios × 1 seed) for CI",
    )
    parser.add_argument("--results-dir", default="results")
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="pool size (default: one per cell up to the CPU count)",
    )
    args = parser.parse_args()

    if args.smoke:
        grid = SweepGrid(
            experiments=("figure3_latency",),
            scenarios=SCENARIOS[:2],
            seeds=(0,),
        )
    else:
        grid = SweepGrid(experiments=EXPERIMENTS, scenarios=SCENARIOS, seeds=SEEDS)

    runner = SweepRunner(results_dir=args.results_dir, processes=args.processes)
    print(f"sweeping {grid.cell_count} cells into {args.results_dir}/ ...")
    report = runner.run(grid)
    summarize(report)
    if report.cached:
        print("\n(cached cells were loaded from disk; delete the results dir to force re-runs)")


if __name__ == "__main__":
    main()
