"""Multi-scenario sweep: every loss regime × seeds × experiments, in parallel.

The paper evaluates each figure at one operating point (a Bernoulli loss
rate on a fixed 10 Mbps link).  This example fans experiment runners out
across a scenario grid — by default i.i.d. loss, Gilbert-Elliott bursty
loss, and a trace-driven time-varying link; with ``--corpus`` the whole
named scenario corpus from ``repro.net.traces`` (LTE drive traces, Wi-Fi
step drops, congestion sawtooths, handover outages, ...) — with several
seeds per cell, using every core available.  Results are persisted as JSON
under ``results/`` and re-running the script is (almost) free: unchanged
cells load from the content-hash cache instead of re-executing.

``--report`` aggregates the persisted cells across seeds (mean ± 95% CI
for every numeric metric) and writes ``report.md`` / ``report.json`` next
to them — a paste-ready cross-scenario comparison.

Cells can also execute on *other machines*: ``--serve [HOST:]PORT`` turns
this process into a sweep coordinator that hands cells to worker agents
(``python -m repro.distrib.worker --connect HOST:PORT``, one per machine or
core), and ``--workers host:port,...`` dials out to persistent agents
(``worker --listen PORT``) instead.  Results land in the same ``results/``
tree either way — caching and ``--report`` work unchanged.

Closed-loop cells ride the same machinery: ``--controller gcc`` (or any
preset name / inline JSON spec, see ``repro.net.control``) adds the
``closed_loop_session`` experiment to the grid with that sender controller
in every scenario, so feedback-driven runs sweep and cache like any other
axis.

Run with:
    PYTHONPATH=src python examples/sweep_scenarios.py                     # full default grid
    PYTHONPATH=src python examples/sweep_scenarios.py --smoke --report    # 8-cell CI smoke run + report
    PYTHONPATH=src python examples/sweep_scenarios.py --corpus lte_drive loss_ladder --report
    PYTHONPATH=src python examples/sweep_scenarios.py --controller aimd --report
    PYTHONPATH=src python examples/sweep_scenarios.py --serve 0.0.0.0:7071   # distribute cells
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics

from repro.analysis import (
    SweepGrid,
    SweepReport,
    SweepRunner,
    bernoulli_scenario,
    corpus_scenarios,
    digest_results_dir,
    gilbert_elliott_scenario,
    trace_scenario,
    write_report,
)
from repro.net.control import preset_controller_spec
from repro.net.traces import list_families

#: Keep runner costs modest so the full grid finishes in well under a minute.
FAST = {"duration_s": 4.0, "height": 160, "width": 288}

SCENARIOS = (
    bernoulli_scenario(0.02, name="iid-2pct", **FAST),
    gilbert_elliott_scenario(
        p_good_to_bad=0.03,
        p_bad_to_good=0.3,
        loss_in_bad=0.5,
        name="bursty",
        **FAST,
    ),
    trace_scenario(
        times=[0.0, 1.5, 3.0],
        rates_bps=[10e6, 2.5e6, 8e6],
        loss_rate=0.01,
        name="trace-droop",
        **FAST,
    ),
)

#: The smoke grid keeps two seeds so the --report aggregation exercises real
#: across-seed statistics (mean ± CI) even in CI.  Each smoke scenario
#: carries a controller spec so the closed-loop cells (and, through the
#: dispatcher smoke step, the distributed wire format) exercise the sender
#: control plane end-to-end; the open-loop experiment simply ignores the
#: kwarg (the registry filters by runner signature).
SMOKE_SCENARIOS = tuple(
    dataclasses.replace(
        scenario,
        overrides={**scenario.overrides, "controller": preset_controller_spec("gcc")},
    )
    for scenario in SCENARIOS[:2]
)
SMOKE_SEEDS = (0, 1)

EXPERIMENTS = ("figure2_redundancy", "figure3_latency", "end_to_end_turn")
SEEDS = (0, 1, 2, 3)


def summarize(report: SweepReport) -> None:
    print(
        f"{len(report.cells)} cells — {report.executed} executed, "
        f"{report.cached} from cache, {report.elapsed_s:.2f}s"
    )
    for experiment in sorted({cell.experiment for cell in report.cells}):
        cells = report.for_experiment(experiment)
        by_scenario: dict[str, list] = {}
        for cell in cells:
            by_scenario.setdefault(cell.scenario.name, []).append(cell)
        print(f"\n  {experiment}")
        for scenario_name, group in sorted(by_scenario.items()):
            metric = _headline_metric(experiment, group)
            print(f"    {scenario_name:<20} ({len(group)} seeds)  {metric}")


def _headline_metric(experiment: str, cells: list) -> str:
    """One human-readable number per (experiment, scenario) group."""
    try:
        if experiment == "figure2_redundancy":
            values = [cell.result["frame_redundancy"] for cell in cells]
            return f"frame_redundancy ≈ {statistics.mean(values):.3f}"
        if experiment == "figure3_latency":
            values = [row["mean_latency_ms"] for cell in cells for row in cell.result]
            return f"mean latency ≈ {statistics.mean(values):.1f} ms"
        if experiment == "end_to_end_turn":
            values = [cell.result["response_latency_ms"] for cell in cells]
            return f"response latency ≈ {statistics.mean(values):.1f} ms"
        if experiment == "closed_loop_session":
            values = [cell.result["delivered_rate_bps"] for cell in cells]
            return f"delivered ≈ {statistics.mean(values) / 1e6:.2f} Mbps"
    except (KeyError, TypeError, statistics.StatisticsError):
        pass
    return "(see JSON)"


def parse_controller_spec(value: str) -> dict:
    """``--controller`` accepts a preset name or an inline JSON spec."""
    if value.lstrip().startswith("{"):
        return json.loads(value)
    return preset_controller_spec(value)


def build_grid(args: argparse.Namespace) -> SweepGrid:
    if args.smoke:
        return SweepGrid(
            experiments=("figure3_latency", "closed_loop_session"),
            scenarios=SMOKE_SCENARIOS,
            seeds=SMOKE_SEEDS,
        )
    seeds = tuple(range(args.seeds)) if args.seeds is not None else SEEDS
    experiments = EXPERIMENTS
    if args.corpus is not None:
        families = args.corpus or None  # bare --corpus means every family
        scenarios = tuple(
            corpus_scenarios(seed=args.corpus_seed, families=families, **FAST)
        )
    else:
        scenarios = SCENARIOS
    if args.controller is not None:
        spec = parse_controller_spec(args.controller)
        experiments = experiments + ("closed_loop_session",)
        scenarios = tuple(
            dataclasses.replace(
                scenario, overrides={**scenario.overrides, "controller": spec}
            )
            for scenario in scenarios
        )
    return SweepGrid(experiments=experiments, scenarios=scenarios, seeds=seeds)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run an 8-cell grid (2 experiments × 2 scenarios × 2 seeds) for CI",
    )
    parser.add_argument(
        "--controller",
        metavar="SPEC",
        default=None,
        help=(
            "add a closed_loop_session experiment with this sender controller "
            "to every scenario: a preset name (gcc, aimd, fixed, gcc-buffer, "
            "aimd-buffer, gcc-ai, aimd-ai) or an inline JSON spec"
        ),
    )
    parser.add_argument(
        "--corpus",
        nargs="*",
        default=None,
        metavar="FAMILY",
        help=(
            "sweep the named scenario-corpus families from repro.net.traces "
            f"(bare --corpus takes all: {', '.join(list_families())})"
        ),
    )
    parser.add_argument(
        "--corpus-seed",
        type=int,
        default=0,
        help="seed for the randomised corpus families (default 0)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="number of seeds per cell (default 4; --smoke pins 2)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="aggregate the results directory into report.md / report.json",
    )
    parser.add_argument("--results-dir", default="results")
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="pool size (default: one per cell up to the CPU count)",
    )
    parser.add_argument(
        "--serve",
        metavar="[HOST:]PORT",
        default=None,
        help=(
            "distribute cells: listen for workers "
            "(python -m repro.distrib.worker --connect HOST:PORT)"
        ),
    )
    parser.add_argument(
        "--workers",
        metavar="HOST:PORT,...",
        default=None,
        help=(
            "distribute cells: dial these persistent worker agents "
            "(python -m repro.distrib.worker --listen PORT)"
        ),
    )
    parser.add_argument(
        "--startup-timeout",
        type=float,
        default=120.0,
        help="abort a distributed sweep if no worker connects in this many seconds",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "coordinator liveness timeout: a worker silent this long is "
            "presumed dead and its cells requeue (default "
            "%(default)s -> repro.distrib.DEFAULT_TIMEOUTS; validated "
            "against the heartbeat interval)"
        ),
    )
    parser.add_argument(
        "--max-requeues",
        type=int,
        default=None,
        help=(
            "times a cell is re-served after its worker dies before it "
            "resolves to an error record (default: RetryPolicy default)"
        ),
    )
    parser.add_argument(
        "--no-local-fallback",
        action="store_true",
        help=(
            "fail a distributed sweep when the worker pool empties instead "
            "of degrading to the local multiprocessing pool"
        ),
    )
    parser.add_argument(
        "--status-json",
        metavar="PATH",
        default=None,
        help=(
            "append one fleet status snapshot per interval to this JSONL "
            "file (the machine-readable twin of "
            "python -m repro.distrib.monitor; autoscaling hook)"
        ),
    )
    parser.add_argument(
        "--status-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between status snapshots (monitors and --status-json)",
    )
    args = parser.parse_args()

    backend = None
    fleet_errors: tuple[type[Exception], ...] = ()
    if args.serve is not None or args.workers is not None:
        from repro.distrib import (
            ConfigError,
            DEFAULT_TIMEOUTS,
            DistributedBackend,
            NoWorkersError,
        )
        from repro.distrib.protocol import parse_address

        fleet_errors = (NoWorkersError,)

        try:
            backend = DistributedBackend(
                listen=parse_address(args.serve) if args.serve is not None else None,
                workers=args.workers.split(",") if args.workers else None,
                timeouts=DEFAULT_TIMEOUTS.override(heartbeat_timeout_s=args.heartbeat_timeout),
                max_requeues=args.max_requeues,
                startup_timeout_s=args.startup_timeout,
                local_fallback=not args.no_local_fallback,
                status_json=args.status_json,
                status_interval_s=args.status_interval,
            )
        except ConfigError as exc:
            parser.error(str(exc))
        print(f"distributed backend: {backend.describe()}")

    grid = build_grid(args)
    runner = SweepRunner(
        results_dir=args.results_dir, processes=args.processes, backend=backend
    )
    print(f"sweeping {grid.cell_count} cells into {args.results_dir}/ ...")
    try:
        report = runner.run(grid)
    except fleet_errors as exc:
        # Only reachable with --no-local-fallback: the pool emptied and the
        # operator asked for an abort instead of local degradation.
        raise SystemExit(f"error: {exc}") from exc
    summarize(report)
    failed = report.failed_cells
    if failed:
        print(f"\nERROR: {len(failed)} cell(s) failed:")
        for cell in failed:
            error = cell.error or {}
            print(
                f"  ! {cell.experiment} / {cell.scenario.name} / seed {cell.seed}: "
                f"{error.get('type')}: {error.get('message')}"
            )
    if report.cached:
        print("\n(cached cells were loaded from disk; delete the results dir to force re-runs)")

    if args.report:
        digest = digest_results_dir(args.results_dir)
        print()
        print(digest.render_text())
        paths = write_report(digest, args.results_dir)
        print(f"\nwrote {paths['markdown']} and {paths['json']}")

    if failed:
        # Fault isolation keeps one bad cell from sinking a long sweep, but
        # the process must still signal the failures (CI greps on exit code).
        raise SystemExit(1)


if __name__ == "__main__":
    main()
