"""The Section 4 extensions in one walkthrough.

Demonstrates the open-question prototypes on a park scene:

* proactive context awareness (no user words yet),
* semantic layered streaming (base layer now, enhancement layers offline),
* long-term memory built from the enhancement layers,
* context-aware token pruning to cut inference latency,
* client/cloud model collaboration for easy questions.

Run with:  python examples/context_aware_extensions.py
"""

from __future__ import annotations

from repro.core import (
    ContextAwareStreamer,
    ContextAwareTokenPruner,
    HybridProactivePolicy,
    PruningConfig,
    SemanticLayeredEncoder,
)
from repro.mllm import LongTermMemory, ModelCollaboration
from repro.video import make_park_scene


def main() -> None:
    scene = make_park_scene(seed=1, height=240, width=432)
    source = scene.to_source()
    frame = source.frame_at(0)
    ear_fact = next(f for f in scene.facts if f.key == "ear_type")
    season_fact = next(f for f in scene.facts if f.key == "season")

    streamer = ContextAwareStreamer()

    # 1. Reactive context awareness: the user just asked about the dog's ears.
    reactive = streamer.correlation_for(scene, ear_fact.question, frame)
    print("reactive: most relevant patches", reactive.top_patches(3))

    # 2. Proactive: before the next question arrives, blend saliency with the
    #    dialogue history so important regions stay protected.
    proactive = HybridProactivePolicy(patch_size=streamer.config.patch_size)
    proactive.observe(reactive)
    importance = proactive.importance_map(frame)
    print("proactive: most relevant patches", importance.top_patches(3))

    # 3. Semantic layered streaming: base layer now, enhancement layers later.
    layered_encoder = SemanticLayeredEncoder(codec=streamer.codec)
    layered = layered_encoder.encode(frame.pixels, reactive)
    bitrates = layered_encoder.layer_bitrates_bps(layered, fps=2.0)
    print("layer bitrates (kbps):", {k: round(v / 1000, 1) for k, v in bitrates.items()})

    # 4. Long-term memory ingests the enhancement layers offline, so a later
    #    question about the season can be answered without re-streaming.
    memory = LongTermMemory()
    memory.ingest(season_fact, observed_quality=0.95, observed_at=frame.timestamp, scene=scene, layer="enhancement_1")
    print("memory recall for 'what season was it?':", [e.fact.key for e in memory.recall("what season was it?")])
    print("answer from memory:", memory.answer_from_memory(season_fact, scene.name))

    # 5. Context-aware token pruning accelerates MLLM inference.
    pruner = ContextAwareTokenPruner(PruningConfig(keep_ratio=0.3))
    pruning = pruner.prune(frame, reactive)
    print(
        f"token pruning: kept {pruning.kept_tokens}/{pruning.total_tokens} tokens, "
        f"saves {pruning.latency_saving_ms:.1f} ms of inference"
    )

    # 6. Client/cloud collaboration: the easy spatial question is served by the
    #    on-device model, the fine-grained ear question goes to the cloud.
    collaboration = ModelCollaboration()
    spatial_fact = next(f for f in scene.facts if f.key == "position")
    frames = [source.frame_at(i) for i in (0, source.frame_count() - 1)]
    for fact in (spatial_fact, ear_fact):
        routed = collaboration.answer(
            fact, scene, frames, frames, uplink_frame_bytes=40_000
        )
        print(
            f"question {fact.key!r}: served by {routed.served_by}, "
            f"correct={routed.answer.correct}, latency {routed.response_latency_ms:.0f} ms, "
            f"uplink {routed.uplink_bytes} bytes"
        )


if __name__ == "__main__":
    main()
