"""Quickstart: one AI Video Chat dialogue turn, baseline vs context-aware.

Builds a synthetic scene (a basketball game with a scoreboard, a player and
spectators), asks the question of the paper's Figure 4 ("Could you tell me
the present score of the game?"), and runs the full pipeline twice at the
same target bitrate: once with the context-agnostic uniform-QP baseline and
once with context-aware streaming.  Prints the answer correctness, achieved
bitrate, and the response-latency budget of each run.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import AIVideoChatSession, ChatSessionConfig
from repro.net import BernoulliLoss, PathConfig
from repro.video import make_sports_scene


def run_turn(context_aware: bool) -> None:
    scene = make_sports_scene(seed=3, height=240, width=432)
    fact = next(f for f in scene.facts if f.key == "score")

    session = AIVideoChatSession(
        scene,
        session_config=ChatSessionConfig(
            target_bitrate_bps=300_000.0,
            context_aware=context_aware,
        ),
        uplink_config=PathConfig(
            bandwidth_bps=10_000_000.0,
            propagation_delay_s=0.030,
            loss_model=BernoulliLoss(0.02),
            seed=1,
        ),
    )
    result = session.run_turn(fact)

    label = "context-aware" if context_aware else "uniform baseline"
    print(f"--- {label} ---")
    print(f"question          : {result.question}")
    print(f"answer correct    : {result.correct}")
    print(f"achieved bitrate  : {result.achieved_bitrate_bps / 1000:.0f} kbps")
    print(f"frames delivered  : {result.frames_delivered}/{result.frames_sent}")
    for stage, value in result.latency_budget.breakdown().items():
        print(f"  {stage:<24}: {value:8.1f}")
    print()


def main() -> None:
    print("AI Video Chat quickstart — asking about the scoreboard at 300 kbps\n")
    run_turn(context_aware=False)
    run_turn(context_aware=True)


if __name__ == "__main__":
    main()
