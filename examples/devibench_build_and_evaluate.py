"""Build a DeViBench instance and evaluate streaming methods on it.

Runs the five-step automatic QA construction pipeline (Section 3.1 of the
paper) over a synthetic video corpus, prints the Table 1 summary and the
Figure 8 distribution, saves the benchmark to JSON, and then evaluates the
uniform baseline against context-aware streaming at several bitrates
(Figure 9).

Run with:  python examples/devibench_build_and_evaluate.py
"""

from __future__ import annotations

from pathlib import Path

from repro.devibench import (
    BenchmarkEvaluator,
    build_benchmark,
    format_figure8,
    format_table1,
)


def main() -> None:
    print("Building DeViBench over a synthetic corpus (this encodes every video)...\n")
    report = build_benchmark(video_count=6, seed=0)

    print(format_table1(report))
    print()
    print(format_figure8(report.benchmark))
    print()

    output = Path("devibench_synthetic.json")
    report.benchmark.save(output)
    print(f"saved {len(report.benchmark)} QA samples to {output}\n")

    evaluator = BenchmarkEvaluator(report.benchmark)
    print(f"{'method':>15} {'target kbps':>12} {'achieved kbps':>14} {'accuracy':>9}")
    for context_aware in (False, True):
        for bitrate in (850_000.0, 430_000.0, 200_000.0):
            result = evaluator.evaluate(bitrate, context_aware=context_aware)
            method = "context-aware" if context_aware else "baseline"
            print(
                f"{method:>15} {bitrate / 1000:>12.0f} "
                f"{result.mean_achieved_bitrate_bps / 1000:>14.0f} {result.accuracy:>9.2f}"
            )


if __name__ == "__main__":
    main()
